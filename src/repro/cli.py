"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``info``        — describe a workload's dataset geometry at any scale.
- ``preprocess``  — generate a synthetic log, run the static FAE pipeline,
                    and persist the packed dataset in the FAE format.
- ``train``       — train baseline or FAE on a synthetic log and report
                    accuracy/AUC.
- ``simulate``    — price baseline/FAE/NvOPT epochs on the paper's server.
- ``certify``     — crash-anywhere certification: SIGKILL a real training
                    process at every cache-refresh phase and checkpoint
                    boundary, resume from the newest good checkpoint, and
                    byte-compare the final state against an uninterrupted
                    run (exit 5 on any divergence).
- ``checkpoint``  — ``ls``/``verify`` a checkpoint directory: step, schema
                    version, size, and integrity per archive; exits
                    nonzero when any checkpoint is corrupt.
- ``trace run``   — run the pipeline with tracing on and print the span
                    summary tree (optionally dumping JSONL).  Plain
                    ``repro trace ...`` still works (``run`` is implied).
- ``trace analyze`` — profile an exported trace JSONL: per-span self
                    time, hotspot table, critical path (text and JSON).
- ``serve-bench`` — Zipf traffic-replay SLO harness over the inference
                    engine: seeded bursty load, P50/P95/P99 + shed-rate
                    report, byte-deterministic per seed in the default
                    simulated-clock mode.  With ``--replicas N`` (or any
                    of ``--hedge-after``/``--reload-at``/``--faults``)
                    the replay drives the replicated ServingCluster:
                    bounded-queue backpressure, failover under seeded
                    replica kill/slow/flap faults, hedged requests, and
                    zero-downtime mid-run generation reload.
- ``bench``       — run the canonical perf suite (preprocess throughput,
                    train step time + sync share, serve latency, cache
                    popularity-shift margins) and write a
                    schema-versioned ``BENCH_<date>.json``;
                    ``--baseline`` gates on regressions.
- ``drift``       — run the popularity-shift scenario: a seeded day
                    stream whose Zipf head rotates mid-run, trained by
                    two arms under one simulated budget (frozen hot set
                    vs online hot cache).  Prints per-day hit rates,
                    drift flags, and turnover, plus post-shift hit /
                    accuracy / loss margins; ``--out`` writes the
                    byte-deterministic JSON report.

``preprocess`` and ``train`` also accept ``--trace`` to print the same
summary tree after the run, and both report a resource summary (peak
RSS, CPU) from the background sampler.  ``train --mode fae`` additionally supports
fault-tolerant operation: ``--checkpoint-dir``/``--checkpoint-every``/
``--resume`` for atomic checkpoint/resume, ``--faults SPEC`` for seeded
chaos injection, and ``--gpus N`` to run the distributed FAE trainer
(whose world shrinks on an injected rank death).  ``--cache-budget
BYTES`` arms the online embedding hot cache; its durable state
(membership, exact counters, sketches, pending windows) rides along in
checkpoints, cache turnover is journaled (``refresh.journal``), and a
crash anywhere — even mid-refresh — resumes byte-exactly.
``--final-state PATH`` writes the deterministic fingerprint ``certify``
compares.

Elastic execution: ``--workers N`` on ``preprocess``/``train`` fans the
profiling pass out over a supervised real-process worker pool
(heartbeat liveness, bounded task leases, ``--speculate`` straggler
duplication) producing a byte-identical plan; ``train --gpus K
--rejoin`` re-admits a dead rank at the next segment boundary instead
of finishing on a shrunken world.  ``--events-jsonl PATH`` writes the
schema-versioned supervisor event log (spawns, heartbeat misses,
deaths, re-dispatches, speculation, quarantine, rejoins).

Data-integrity guardrails: ``train --mode fae --guards [SPEC]`` arms the
NaN/loss-spike numeric guard (rollback to the last good checkpoint with
learning-rate backoff); ``--validate POLICY`` on ``train`` and
``preprocess`` runs ingest validation (``raise`` | ``clamp`` |
``quarantine``, or per-field like ``sparse=quarantine,dense=clamp``)
with quarantined records written to ``--quarantine-dir``'s JSONL ledger.

Top-level failures exit nonzero with a one-line error; pass
``--traceback`` (before the subcommand) to re-raise with the full stack.
A :class:`~repro.resilience.guards.GuardAbort` additionally prints which
guard gave up and where the ledger / last good checkpoints live.

Every command is pure-library orchestration; all heavy lifting lives in
the packages this module imports.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro import obs
from repro.core import FAEConfig, fae_preprocess, fae_preprocess_source
from repro.data import SyntheticClickLog, SyntheticConfig, dataset_by_name, train_test_split
from repro.hw import Cluster, PowerModel, TrainingSimulator, characterize
from repro.dist import DistributedFAETrainer
from repro.models import build_model, workload_by_name
from repro.resilience import (
    CheckpointManager,
    FaultPlan,
    GuardAbort,
    IngestPolicy,
    NumericGuard,
    NumericGuardConfig,
    QuarantineLedger,
    latest_checkpoint,
)
from repro.train import BaselineTrainer, FAETrainer, roc_auc
from repro.train.metrics import evaluate_model

__all__ = ["main", "build_parser"]

_DATASET_CHOICES = ("criteo-kaggle", "criteo-terabyte", "taobao")
_WORKLOAD_FOR_DATASET = {
    "criteo-kaggle": "RMC2",
    "criteo-terabyte": "RMC3",
    "taobao": "RMC1",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FAE: accelerate recommendation training via hot embeddings",
    )
    parser.add_argument(
        "--traceback",
        action="store_true",
        help="re-raise errors with the full stack trace instead of a one-line message",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="describe a dataset's geometry")
    info.add_argument("dataset", choices=_DATASET_CHOICES)
    info.add_argument("--scale", default="paper", help="paper|medium|small|tiny or a float")

    prep = sub.add_parser("preprocess", help="run the static FAE pipeline")
    _add_data_args(prep)
    prep.add_argument("--batch-size", type=int, default=256)
    prep.add_argument(
        "--out",
        default=None,
        help="write the packed dataset here (.npz file, or a directory with --shard-size)",
    )
    prep.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="stream the log through the pipeline in chunks of this many samples "
        "(bounds preprocess memory; default processes the log in one chunk)",
    )
    prep.add_argument(
        "--shard-size",
        type=int,
        default=None,
        help="write --out as a sharded directory with this many batches per shard",
    )
    prep.add_argument(
        "--stream",
        action="store_true",
        help="generate the synthetic log lazily chunk-by-chunk instead of "
        "materializing it (constant memory in --samples; implies --chunk-size)",
    )
    prep.add_argument(
        "--trace", action="store_true", help="record spans and print the summary tree"
    )
    prep.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "inject seeded real-process faults into the elastic pool, e.g. "
            "'seed=7,kill_task=1,straggle_task=3,straggle_secs=0.8,hang_task=2'"
        ),
    )
    _add_elastic_args(prep)
    _add_validate_args(prep)

    train = sub.add_parser("train", help="train on a synthetic log")
    _add_data_args(train)
    train.add_argument("--mode", choices=("baseline", "fae", "both"), default="both")
    train.add_argument("--epochs", type=int, default=2)
    train.add_argument("--batch-size", type=int, default=256)
    train.add_argument("--lr", type=float, default=0.15)
    train.add_argument(
        "--trace", action="store_true", help="record spans and print the summary tree"
    )
    train.add_argument(
        "--gpus",
        type=int,
        default=1,
        help="simulated GPU count; >1 runs the distributed FAE trainer (--mode fae)",
    )
    train.add_argument(
        "--checkpoint-dir",
        default=None,
        help="save atomic checkpoints here at segment boundaries (--mode fae)",
    )
    train.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        help="checkpoint every N completed segments",
    )
    train.add_argument(
        "--checkpoint-keep", type=int, default=3, help="retain the newest N checkpoints"
    )
    train.add_argument(
        "--resume",
        action="store_true",
        help="resume from the newest good checkpoint in --checkpoint-dir",
    )
    train.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "inject seeded faults, e.g. "
            "'seed=7,collective=0.05,death=1@40,evict=80,loader=0.02,"
            "ingest=0.01,bad_batch=0.02,bad_grad=30,bad_row=5,corrupt=bitflip'"
        ),
    )
    train.add_argument(
        "--guards",
        nargs="?",
        const="default",
        default=None,
        metavar="SPEC",
        help=(
            "arm the numeric guard (--mode fae): NaN/Inf batch & gradient "
            "screening plus EMA loss-spike rollback; optional SPEC like "
            "'spike=4.0,ema=0.9,warmup=8,rollbacks=2,backoff=0.5,skips=16'"
        ),
    )
    train.add_argument(
        "--rejoin",
        action="store_true",
        help=(
            "re-admit a permanently failed rank at the next segment boundary "
            "(state resynced from the CPU masters; requires --gpus > 1)"
        ),
    )
    train.add_argument(
        "--cache-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help=(
            "run with the online embedding hot cache under this GPU byte "
            "budget (--mode fae); cache state rides along in checkpoints"
        ),
    )
    train.add_argument(
        "--cache-every",
        type=int,
        default=512,
        metavar="INPUTS",
        help="observed inputs between cache rebalances (with --cache-budget)",
    )
    train.add_argument(
        "--final-state",
        default=None,
        metavar="PATH",
        help=(
            "write the deterministic final-state fingerprint (param/table "
            "digests, result, cache state) here — crash-recovery runs are "
            "certified by byte-comparing these files"
        ),
    )
    _add_elastic_args(train)
    _add_validate_args(train)

    trace = sub.add_parser(
        "trace", help="run the pipeline under tracing, or analyze an exported trace"
    )
    trace_sub = trace.add_subparsers(dest="trace_cmd", required=True)
    trace_run = trace_sub.add_parser(
        "run", help="run preprocess + train with tracing on; print the span tree"
    )
    trace_run.add_argument(
        "dataset", nargs="?", default="criteo-kaggle", choices=_DATASET_CHOICES
    )
    trace_run.add_argument("--scale", default="small")
    trace_run.add_argument("--rows", type=int, default=4096, help="synthetic log size")
    trace_run.add_argument("--seed", type=int, default=0)
    trace_run.add_argument("--budget-bytes", type=int, default=256 * 1024)
    trace_run.add_argument("--large-table-min-bytes", type=int, default=1024)
    trace_run.add_argument("--batch-size", type=int, default=128)
    trace_run.add_argument("--epochs", type=int, default=1)
    trace_run.add_argument("--lr", type=float, default=0.15)
    trace_run.add_argument(
        "--out", default=None, help="also dump spans + metric snapshots as JSONL here"
    )
    trace_analyze = trace_sub.add_parser(
        "analyze",
        help="profile a trace JSONL: self time, hotspots, critical path",
    )
    trace_analyze.add_argument("path", help="trace JSONL exported by 'trace run --out'")
    trace_analyze.add_argument(
        "--top", type=int, default=10, help="hotspot table depth"
    )
    trace_analyze.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the analysis as JSON ('-' prints to stdout instead of text)",
    )

    serve_bench = sub.add_parser(
        "serve-bench",
        help="Zipf traffic-replay SLO report over the inference engine",
    )
    serve_bench.add_argument("--requests", type=int, default=512)
    serve_bench.add_argument("--candidates", type=int, default=512)
    serve_bench.add_argument("--top-k", type=int, default=10)
    serve_bench.add_argument("--seed", type=int, default=7)
    serve_bench.add_argument(
        "--dataset", choices=_DATASET_CHOICES, default="criteo-kaggle"
    )
    serve_bench.add_argument("--scale", default="tiny")
    serve_bench.add_argument(
        "--rate", type=float, default=200.0, help="steady arrival rate, req/s"
    )
    serve_bench.add_argument(
        "--burst-factor", type=float, default=4.0, help="arrival-rate multiplier in bursts"
    )
    serve_bench.add_argument(
        "--hot-exponent", type=float, default=1.05, help="candidate-key Zipf skew"
    )
    serve_bench.add_argument(
        "--deadline-ms",
        type=float,
        default=25.0,
        help="per-request ranking deadline; <= 0 disables",
    )
    serve_bench.add_argument(
        "--mode",
        choices=("simulated", "wall"),
        default="simulated",
        help="simulated = virtual clock, byte-deterministic; wall = real clock",
    )
    serve_bench.add_argument(
        "--slow",
        default=None,
        metavar="START:STOP[:FACTOR]",
        help="inject a slow-replica fault over that request-index window",
    )
    serve_bench.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="replica pool size; > 1 (or any HA flag) runs the ServingCluster replay",
    )
    serve_bench.add_argument(
        "--queue-capacity",
        type=int,
        default=64,
        help="cluster admission backlog bound (reject-with-retry-after beyond it)",
    )
    serve_bench.add_argument(
        "--hedge-after",
        type=float,
        default=0.0,
        metavar="MS",
        help="hedge requests slower than this budget on a second replica; <= 0 disables",
    )
    serve_bench.add_argument(
        "--reload-at",
        type=int,
        default=None,
        metavar="REQUEST",
        help="begin a zero-downtime generation reload at this request index",
    )
    serve_bench.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="replica fault plan, e.g. 'seed=7,kill_replica=1@120,slow_replica=2@40:160'",
    )
    serve_bench.add_argument(
        "--out-dir", default="benchmarks/out", help="bench artifact directory"
    )
    serve_bench.add_argument(
        "--out", default=None, help="report JSON path (default OUT_DIR/slo_report.json)"
    )

    bench = sub.add_parser(
        "bench",
        help="run the canonical perf suite; write BENCH_<date>.json; gate on --baseline",
    )
    bench.add_argument(
        "--quick", action="store_true", help="CI-sized suite (seconds, same code paths)"
    )
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument(
        "--out-dir", default="benchmarks/out", help="bench artifact directory"
    )
    bench.add_argument(
        "--sections",
        default=None,
        help="comma-separated subset of preprocess,train,serve (default all)",
    )
    bench.add_argument(
        "--baseline", default=None, help="compare against this BENCH_*.json snapshot"
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative worsening that counts as a regression",
    )
    bench.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (cross-host CI)",
    )
    bench.add_argument(
        "--check",
        default=None,
        metavar="SNAPSHOT",
        help="compare an existing snapshot instead of running the suite",
    )

    drift = sub.add_parser(
        "drift",
        help="run the popularity-shift scenario: online hot cache vs frozen hot set",
    )
    drift.add_argument("dataset", choices=_DATASET_CHOICES, nargs="?", default="criteo-kaggle")
    drift.add_argument("--scale", default="tiny", help="paper|medium|small|tiny or a float")
    drift.add_argument("--samples-per-day", type=int, default=1500)
    drift.add_argument("--days", type=int, default=6, help="total days (day 0 calibrates)")
    drift.add_argument(
        "--shift-day", type=int, default=2, help="first day drawn from the rotated Zipf head"
    )
    drift.add_argument("--seed", type=int, default=12)
    drift.add_argument(
        "--budget-bytes", type=int, default=32 * 1024, help="GPU byte budget for hot rows"
    )
    drift.add_argument("--batch-size", type=int, default=64)
    drift.add_argument(
        "--out", default=None, help="write the full JSON report here (deterministic bytes)"
    )

    sim = sub.add_parser("simulate", help="price training on the paper's server")
    sim.add_argument("workload", choices=("RMC1", "RMC2", "RMC3"))
    sim.add_argument("--gpus", type=int, default=4)
    sim.add_argument("--epochs", type=int, default=10)
    sim.add_argument("--budget-mb", type=int, default=256)
    sim.add_argument(
        "--auto-budget",
        action="store_true",
        help="derive the hot-embedding budget from GPU memory instead of --budget-mb",
    )

    certify = sub.add_parser(
        "certify",
        help=(
            "crash-anywhere certification: SIGKILL a real training run at "
            "every refresh phase and checkpoint boundary, resume, and "
            "byte-compare the final state against an uninterrupted run"
        ),
    )
    certify.add_argument(
        "dataset", choices=_DATASET_CHOICES, nargs="?", default="criteo-kaggle"
    )
    certify.add_argument("--scale", default="tiny")
    certify.add_argument("--samples", type=int, default=2048)
    certify.add_argument("--seed", type=int, default=12)
    certify.add_argument("--epochs", type=int, default=1)
    certify.add_argument("--batch-size", type=int, default=64)
    certify.add_argument("--lr", type=float, default=0.15)
    certify.add_argument("--budget-bytes", type=int, default=32 * 1024)
    certify.add_argument("--cache-budget", type=int, default=32 * 1024)
    certify.add_argument("--cache-every", type=int, default=256)
    certify.add_argument("--checkpoint-every", type=int, default=1)
    certify.add_argument(
        "--refresh-index", type=int, default=0, help="which cache turnover to kill"
    )
    certify.add_argument(
        "--phases",
        default=None,
        help="comma-separated refresh phases to kill at (default: all)",
    )
    certify.add_argument(
        "--checkpoints",
        default="0",
        help="comma-separated checkpoint-save indices to kill after ('' skips)",
    )
    certify.add_argument(
        "--steps",
        default="",
        help="comma-separated iteration numbers for mid-segment kills ('' skips)",
    )
    certify.add_argument(
        "--gpus", type=int, default=1, help="> 1 certifies the distributed trainer"
    )
    certify.add_argument(
        "--timeout", type=float, default=600.0, help="per-subprocess bound, seconds"
    )
    certify.add_argument("--out-dir", default="benchmarks/out/certify")

    ckpt = sub.add_parser(
        "checkpoint", help="inspect training checkpoints: ls / verify"
    )
    ckpt_sub = ckpt.add_subparsers(dest="checkpoint_cmd", required=True)
    ckpt_ls = ckpt_sub.add_parser(
        "ls",
        help="list a directory's checkpoints with step, schema version, size, integrity",
    )
    ckpt_ls.add_argument("directory")
    ckpt_ls.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    ckpt_verify = ckpt_sub.add_parser(
        "verify",
        help="verify checkpoint integrity; exit nonzero on any corruption",
    )
    ckpt_verify.add_argument("path", help="a checkpoint file or a directory of them")

    report = sub.add_parser(
        "report", help="stitch benchmark artifacts into a markdown report"
    )
    report.add_argument("--artifacts", default="benchmarks/out")
    report.add_argument("--out", default="REPORT.md")

    return parser


def _add_elastic_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "profile chunks on a supervised pool of this many worker "
            "processes (0 = in-process; the plan is byte-identical either way)"
        ),
    )
    sub.add_argument(
        "--heartbeat-interval",
        type=float,
        default=0.5,
        help="worker heartbeat period in seconds (liveness = interval x miss budget)",
    )
    sub.add_argument(
        "--speculate",
        action="store_true",
        help="duplicate straggling tasks on idle workers; first result wins",
    )
    sub.add_argument(
        "--events-jsonl",
        default=None,
        metavar="PATH",
        help="write the schema-versioned supervisor event log here",
    )


def _elastic_pool(args, fault_plan=None, events=None):
    """Build the elastic worker pool from CLI flags (None when --workers=0)."""
    if not args.workers:
        return None
    from repro.resilience.elastic import ElasticConfig, WorkerPool

    return WorkerPool(
        ElasticConfig(
            workers=args.workers,
            heartbeat_interval=args.heartbeat_interval,
            speculate=args.speculate,
        ),
        worker_faults=fault_plan.worker_faults() if fault_plan is not None else None,
        events=events,
        quarantine_dir=args.quarantine_dir,
    )


def _print_elastic_summary(pool) -> None:
    events = pool.events
    print(
        f"elastic: workers {pool.config.workers}, spawns {events.count('spawn')}, "
        f"deaths {events.count('death')}, re-dispatches {events.count('re-dispatch')}, "
        f"speculations {events.count('speculate')}, "
        f"quarantined {events.count('quarantine')}"
    )


def _add_validate_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--validate",
        default=None,
        metavar="POLICY",
        help=(
            "validate ingest records: 'raise', 'clamp', 'quarantine', or "
            "per-field like 'sparse=quarantine,dense=clamp'"
        ),
    )
    sub.add_argument(
        "--quarantine-dir",
        default=None,
        help=(
            "write quarantined records to DIR/quarantine.jsonl (required by "
            "any 'quarantine' policy; implies --validate quarantine)"
        ),
    )


def _ingest_policy(args) -> tuple[IngestPolicy | None, QuarantineLedger | None]:
    """Resolve --validate/--quarantine-dir into a policy + ledger pair.

    Raises:
        ValueError: when a quarantine policy has nowhere to write.
    """
    spec = args.validate
    if spec is None and args.quarantine_dir:
        spec = "quarantine"
    if spec is None:
        return None, None
    policy = IngestPolicy.parse(spec)
    ledger = QuarantineLedger(args.quarantine_dir) if args.quarantine_dir else None
    if policy.quarantines and ledger is None:
        raise ValueError("a 'quarantine' policy requires --quarantine-dir")
    return policy, ledger


def _add_data_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("dataset", choices=_DATASET_CHOICES)
    sub.add_argument("--scale", default="small")
    sub.add_argument("--samples", type=int, default=40_000)
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument("--budget-bytes", type=int, default=256 * 1024)
    sub.add_argument("--large-table-min-bytes", type=int, default=1024)


def _make_log(args) -> SyntheticClickLog:
    schema = dataset_by_name(args.dataset, _parse_scale(args.scale))
    return SyntheticClickLog(
        schema, SyntheticConfig(num_samples=args.samples, seed=args.seed)
    )


def _parse_scale(scale: str):
    try:
        return float(scale)
    except ValueError:
        return scale


def _make_config(args) -> FAEConfig:
    return FAEConfig(
        gpu_memory_budget=args.budget_bytes,
        large_table_min_bytes=args.large_table_min_bytes,
        chunk_size=64,
        seed=args.seed,
    )


def cmd_info(args) -> int:
    schema = dataset_by_name(args.dataset, _parse_scale(args.scale))
    print(schema.describe())
    print(f"  lookups/sample: {schema.lookups_per_sample()}")
    for spec in sorted(schema.tables, key=lambda t: -t.num_rows)[:5]:
        print(
            f"  {spec.name}: {spec.num_rows:,} rows x {spec.dim} "
            f"({spec.size_bytes / 2**20:.1f} MiB, zipf s={spec.zipf_exponent})"
        )
    return 0


def cmd_preprocess(args) -> int:
    sampler = obs.ResourceSampler()
    try:
        with sampler, obs.tracing(enabled=args.trace or obs.tracing_enabled()):
            if args.stream:
                from repro.data import SyntheticClickStream
                from repro.data.chunk_source import StreamChunkSource

                schema = dataset_by_name(args.dataset, _parse_scale(args.scale))
                source = StreamChunkSource(
                    SyntheticClickStream(
                        schema,
                        total_samples=args.samples,
                        chunk_size=args.chunk_size or 8192,
                        seed=args.seed,
                    )
                )
            else:
                from repro.data import LogChunkSource

                source = LogChunkSource(_make_log(args), chunk_size=args.chunk_size)
            policy, ledger = _ingest_policy(args)
            if policy is not None:
                from repro.data import ValidatingChunkSource

                source = ValidatingChunkSource(source, policy, ledger)
            fault_plan = FaultPlan.parse(args.faults) if args.faults else None
            events = None
            if args.events_jsonl:
                from repro.resilience.elastic import SupervisorEventLog

                events = SupervisorEventLog(args.events_jsonl)
            pool = _elastic_pool(args, fault_plan=fault_plan, events=events)
            plan = fae_preprocess_source(
                source, _make_config(args), batch_size=args.batch_size, pool=pool
            )
            print(plan.summary())
            if ledger is not None:
                print(f"ingest: quarantined {len(ledger)} record(s) -> {ledger.path}")
            print(
                f"calibration: {plan.calibration.total_seconds:.3f}s "
                f"({plan.calibration.result.iterations} thresholds evaluated), "
                f"classification: {plan.classify_seconds:.3f}s"
            )
            if pool is not None:
                _print_elastic_summary(pool)
                if pool.events.path is not None:
                    print(f"wrote {pool.events.path}")
            if args.out:
                plan.save(args.out, shard_size=args.shard_size)
                print(f"wrote {args.out}")
            if args.trace:
                print()
                print(obs.summary_tree())
    finally:
        # Printed even when the run raises: the sampler context has
        # stopped its thread by now either way, and the peak-RSS line is
        # most interesting exactly when something blew up.
        print(sampler.format_summary())
    return 0


def cmd_train(args) -> int:
    resilience_flags = (
        args.checkpoint_dir
        or args.resume
        or args.faults
        or args.gpus > 1
        or args.guards is not None
        or args.validate
        or args.quarantine_dir
        or args.workers
        or args.rejoin
        or args.events_jsonl
        or args.cache_budget is not None
        or args.final_state
    )
    if resilience_flags and args.mode != "fae":
        print(
            "error: --gpus/--checkpoint-dir/--resume/--faults/--guards/"
            "--validate/--quarantine-dir/--workers/--rejoin/--events-jsonl/"
            "--cache-budget/--final-state require --mode fae",
            file=sys.stderr,
        )
        return 2
    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.gpus < 1:
        print("error: --gpus must be >= 1", file=sys.stderr)
        return 2
    if args.rejoin and args.gpus < 2:
        print("error: --rejoin requires --gpus > 1", file=sys.stderr)
        return 2

    sampler = obs.ResourceSampler()
    try:
        with sampler, obs.tracing(enabled=args.trace or obs.tracing_enabled()):
            log = _make_log(args)
            train, test = train_test_split(log, 0.15, seed=args.seed)
            spec = workload_by_name(_WORKLOAD_FOR_DATASET[args.dataset])

            def report(label: str, model) -> None:
                loss, accuracy = evaluate_model(model, test)
                import numpy as np

                from repro.data.loader import batch_from_log

                batch = batch_from_log(test, np.arange(min(len(test), 8192)))
                auc = roc_auc(model.forward(batch), batch.labels)
                print(f"{label}: test loss {loss:.4f}  accuracy {accuracy:.4f}  AUC {auc:.4f}")

            if args.mode in ("fae", "both"):
                fault_plan = FaultPlan.parse(args.faults) if args.faults else None
                guards = (
                    NumericGuard(NumericGuardConfig.parse(args.guards))
                    if args.guards is not None
                    else None
                )
                if fault_plan is not None:
                    injected = fault_plan.corrupt_ingest(train)
                    if injected:
                        print(f"chaos: poisoned {len(injected)} ingest row(s)")
                policy, ledger = _ingest_policy(args)
                if policy is not None:
                    from repro.data import validated_log

                    before = len(train)
                    train = validated_log(train, policy, ledger)
                    repaired = before - len(train)
                    where = f" -> {ledger.path}" if ledger is not None else ""
                    print(
                        f"ingest: {before} records validated, "
                        f"{repaired} quarantined{where}"
                    )
                manager = (
                    CheckpointManager(
                        args.checkpoint_dir,
                        every=args.checkpoint_every,
                        keep=args.checkpoint_keep,
                    )
                    if args.checkpoint_dir
                    else None
                )
                resume_path = None
                if args.resume:
                    resume_path = latest_checkpoint(args.checkpoint_dir)
                    if resume_path is None:
                        print("no usable checkpoint found; starting fresh")
                    else:
                        print(f"resuming from {resume_path}")

                event_log = None
                if args.events_jsonl:
                    from repro.resilience.elastic import SupervisorEventLog

                    event_log = SupervisorEventLog(args.events_jsonl)
                pool = _elastic_pool(args, fault_plan=fault_plan, events=event_log)
                plan = fae_preprocess(
                    train, _make_config(args), batch_size=args.batch_size, pool=pool
                )
                print(f"FAE plan: {plan.summary()}")
                if pool is not None:
                    _print_elastic_summary(pool)
                cache = None
                if args.cache_budget is not None:
                    from repro.core.hotcache import EmbeddingHotCache, HotCacheConfig

                    cache = EmbeddingHotCache(
                        plan.bags,
                        HotCacheConfig(
                            budget_bytes=args.cache_budget,
                            rebalance_every=args.cache_every,
                            seed=args.seed,
                        ),
                        profile=plan.calibration.profile,
                    )
                if args.gpus > 1:
                    replicas = [
                        build_model(spec, schema=log.schema, seed=args.seed + 1)
                        for _ in range(args.gpus)
                    ]
                    trainer = DistributedFAETrainer(
                        replicas,
                        plan,
                        lr=args.lr,
                        fault_plan=fault_plan,
                        guards=guards,
                        rejoin=args.rejoin,
                        event_log=event_log,
                        cache=cache,
                    )
                    if ledger is not None:
                        trainer.guard_ledger_path = str(ledger.path)
                    result = trainer.train(
                        train,
                        test,
                        epochs=args.epochs,
                        checkpoint=manager,
                        resume=resume_path,
                    )
                    model = trainer.replicas[0]
                else:
                    model = build_model(spec, schema=log.schema, seed=args.seed + 1)
                    trainer = FAETrainer(
                        model,
                        plan,
                        lr=args.lr,
                        fault_plan=fault_plan,
                        guards=guards,
                        cache=cache,
                    )
                    if ledger is not None:
                        trainer.guard_ledger_path = str(ledger.path)
                    result = trainer.train(
                        train,
                        test,
                        epochs=args.epochs,
                        checkpoint=manager,
                        resume=resume_path,
                    )
                print(f"FAE syncs: {result.sync_events}, rate trace: {result.schedule_rates}")
                if guards is not None:
                    print(
                        f"guards: rollbacks {result.rollbacks}, "
                        f"skipped batches {result.skipped_batches}, "
                        f"skipped steps {result.skipped_steps}"
                    )
                if fault_plan is not None:
                    registry = obs.get_registry()
                    print(
                        f"chaos: retries {int(registry.counter('resilience.retry.attempts').value)}, "
                        f"world shrinks {result.world_shrinks}, "
                        f"rejoins {result.rejoins}, "
                        f"degraded {result.degraded}, "
                        f"checkpoints {int(registry.counter('resilience.checkpoint.saves').value)}"
                    )
                if event_log is not None and len(event_log):
                    path = event_log.flush()
                    if path is not None:
                        print(f"wrote {path}")
                if cache is not None:
                    stats = cache.stats()
                    print(
                        f"cache: hit rate {stats['hit_rate']:.3f}, "
                        f"rebalances {stats['rebalances']}, "
                        f"+{stats['promotions']}/-{stats['demotions']} rows"
                    )
                if args.final_state:
                    from repro.resilience.certify import write_final_state

                    destination = write_final_state(
                        args.final_state, model, result, cache
                    )
                    print(f"wrote {destination}")
                report("FAE", model)
            if args.mode in ("baseline", "both"):
                model = build_model(spec, schema=log.schema, seed=args.seed + 1)
                BaselineTrainer(model, lr=args.lr).train(
                    train, test, epochs=args.epochs, batch_size=args.batch_size
                )
                report("baseline", model)
            if args.trace:
                print()
                print(obs.summary_tree())
    finally:
        # Printed even when training raises (GuardAbort, chaos overrun):
        # the context manager has already stopped the sampler thread.
        print(sampler.format_summary())
    return 0


def cmd_trace(args) -> int:
    """Dispatch ``trace run`` / ``trace analyze``."""
    if args.trace_cmd == "analyze":
        return cmd_trace_analyze(args)
    return cmd_trace_run(args)


def cmd_trace_analyze(args) -> int:
    """Profile an exported trace JSONL: self time, hotspots, critical path."""
    analysis = obs.analyze_file(args.path)
    if args.json == "-":
        print(json.dumps(analysis.to_dict(top=args.top), indent=2, sort_keys=True))
        return 0
    print(obs.render_analysis(analysis, top=args.top))
    if args.json:
        from repro.resilience.atomic import atomic_write_text

        atomic_write_text(
            Path(args.json),
            json.dumps(analysis.to_dict(top=args.top), indent=2, sort_keys=True) + "\n",
        )
        print(f"\nwrote {args.json}")
    return 0


def cmd_trace_run(args) -> int:
    """Run the full pipeline under tracing and print the span tree."""
    schema = dataset_by_name(args.dataset, _parse_scale(args.scale))
    log = SyntheticClickLog(
        schema, SyntheticConfig(num_samples=args.rows, seed=args.seed)
    )
    with obs.tracing(enabled=True) as tracer:
        tracer.reset()
        obs.get_registry().reset()
        train, test = train_test_split(log, 0.15, seed=args.seed)
        plan = fae_preprocess(train, _make_config(args), batch_size=args.batch_size)
        print(f"plan: {plan.summary()}")
        spec = workload_by_name(_WORKLOAD_FOR_DATASET[args.dataset])
        model = build_model(spec, schema=log.schema, seed=args.seed + 1)
        result = FAETrainer(model, plan, lr=args.lr).train(
            train, test, epochs=args.epochs
        )
        print(
            f"trained {args.epochs} epoch(s): test accuracy "
            f"{result.final_test_accuracy:.4f}, syncs {result.sync_events} "
            f"({result.sync_bytes / 1024:.0f} KiB)"
        )
        print()
        print(obs.summary_tree())
        if args.out:
            path = obs.export_jsonl(args.out)
            print(f"\nwrote {path}")
    return 0


def cmd_simulate(args) -> int:
    spec = workload_by_name(args.workload)
    budget = args.budget_mb * 2**20
    if args.auto_budget:
        from repro.core import plan_memory_budget

        sizing = characterize(spec, gpu_memory_budget=budget)
        plan = plan_memory_budget(sizing, per_gpu_batch=spec.base_batch_size)
        budget = plan.recommended_budget
        print(
            f"auto budget: {budget / 2**20:.0f} MiB of hot embeddings "
            f"(model {plan.model_bytes / 2**20:.0f} MiB, activations "
            f"{plan.activation_bytes / 2**20:.0f} MiB, HBM utilization "
            f"{100 * plan.utilization():.0f}%)"
        )
    workload = characterize(spec, gpu_memory_budget=budget)
    cluster = Cluster(num_gpus=args.gpus)
    sim = TrainingSimulator(cluster, workload)
    pm = PowerModel()
    print(
        f"{args.workload} on {args.gpus}x V100 "
        f"(hot inputs {100 * workload.hot_fraction:.1f}%, "
        f"hot bag {workload.hot_bytes / 2**20:.0f} MiB):"
    )
    for mode in ("baseline", "fae", "nvopt"):
        timeline = sim.epoch(mode)
        print(
            f"  {mode:9}: {args.epochs * timeline.minutes:8.1f} min/{args.epochs} epochs, "
            f"comm {args.epochs * timeline.communication_seconds() / 60:6.1f} min, "
            f"{pm.average_watts(timeline):5.1f} W/GPU"
        )
    print(f"  FAE speedup over baseline: {sim.speedup():.2f}x")
    return 0


def cmd_certify(args) -> int:
    """Run the crash-anywhere certification campaign.

    Exit codes: 0 when every kill point resumed to a byte-identical
    final state, 5 on any mismatch / unfired kill point / failed resume.
    """
    from repro.resilience.certify import (
        CertifyConfig,
        format_certification,
        run_certification,
    )
    from repro.resilience.faults import REFRESH_PHASES

    def _csv_ints(spec: str) -> tuple[int, ...]:
        return tuple(int(part) for part in spec.split(",") if part.strip())

    config = CertifyConfig(
        dataset=args.dataset,
        scale=args.scale,
        samples=args.samples,
        seed=args.seed,
        epochs=args.epochs,
        batch_size=args.batch_size,
        lr=args.lr,
        budget_bytes=args.budget_bytes,
        cache_budget=args.cache_budget,
        cache_every=args.cache_every,
        checkpoint_every=args.checkpoint_every,
        refresh_index=args.refresh_index,
        phases=(
            tuple(part.strip() for part in args.phases.split(",") if part.strip())
            if args.phases
            else REFRESH_PHASES
        ),
        checkpoints=_csv_ints(args.checkpoints),
        steps=_csv_ints(args.steps),
        gpus=args.gpus,
        timeout=args.timeout,
    )
    report = run_certification(config, args.out_dir)
    print()
    print(format_certification(report))
    print(f"wrote {Path(args.out_dir) / 'certify_report.json'}")
    return 0 if report["passed"] else 5


def cmd_checkpoint(args) -> int:
    """``checkpoint ls`` / ``checkpoint verify``.

    Both walk ``ckpt-*.npz`` archives, verify their checksums, and exit
    nonzero when any is corrupt — scriptable health checks over a
    checkpoint directory.
    """
    from repro.resilience import read_checkpoint_meta
    from repro.resilience.checkpoint import CheckpointError

    target = Path(args.directory if args.checkpoint_cmd == "ls" else args.path)
    if target.is_dir():
        paths = sorted(target.glob("ckpt-*.npz"))
    elif target.exists():
        paths = [target]
    else:
        print(f"error: {target} does not exist", file=sys.stderr)
        return 2

    rows = []
    corrupt = 0
    for path in paths:
        try:
            meta = read_checkpoint_meta(path)
            rows.append(
                {
                    "file": path.name,
                    "step": meta.get("step"),
                    "epoch": meta.get("epoch"),
                    "schema_version": meta.get("version"),
                    "size_bytes": meta.get("size_bytes"),
                    "status": "ok",
                }
            )
        except (CheckpointError, OSError, ValueError) as exc:
            corrupt += 1
            rows.append(
                {
                    "file": path.name,
                    "step": None,
                    "epoch": None,
                    "schema_version": None,
                    "size_bytes": path.stat().st_size if path.exists() else None,
                    "status": f"corrupt: {exc}",
                }
            )

    if args.checkpoint_cmd == "ls" and args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
    else:
        if not rows:
            print(f"no checkpoints under {target}")
        else:
            print(f"{'file':<22} {'step':>8} {'epoch':>5} {'schema':>6} {'bytes':>10}  status")
            for row in rows:
                step = "-" if row["step"] is None else row["step"]
                epoch = "-" if row["epoch"] is None else row["epoch"]
                schema = "-" if row["schema_version"] is None else row["schema_version"]
                size = "-" if row["size_bytes"] is None else row["size_bytes"]
                print(
                    f"{row['file']:<22} {step:>8} {epoch:>5} {schema:>6} "
                    f"{size:>10}  {row['status']}"
                )
    if corrupt:
        print(f"error: {corrupt} corrupt checkpoint(s)", file=sys.stderr)
        return 1
    return 0


def cmd_report(args) -> int:
    from repro.analysis import write_report

    destination = write_report(args.artifacts, args.out)
    print(f"wrote {destination}")
    return 0


def _parse_slow_window(spec: str | None) -> dict:
    """Parse ``START:STOP[:FACTOR]`` into ReplayConfig overrides."""
    if spec is None:
        return {}
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise ValueError(f"--slow expects START:STOP[:FACTOR], got {spec!r}")
    overrides = {"slow_start": int(parts[0]), "slow_stop": int(parts[1])}
    if len(parts) == 3:
        overrides["slow_factor"] = float(parts[2])
    return overrides


def cmd_serve_bench(args) -> int:
    """Seeded Zipf traffic replay; print + persist the SLO report.

    A single engine by default; any HA flag (``--replicas`` > 1,
    ``--hedge-after``, ``--reload-at``, ``--faults``) switches to the
    replicated :class:`~repro.serve.cluster.ServingCluster` replay.
    """
    from repro.resilience.atomic import atomic_write_text
    from repro.serve import (
        ClusterReplayConfig,
        ReplayConfig,
        format_cluster_report,
        format_slo_report,
        run_cluster_replay,
        run_slo_replay,
    )

    base = dict(
        requests=args.requests,
        candidates=args.candidates,
        top_k=args.top_k,
        seed=args.seed,
        dataset=args.dataset,
        scale=args.scale,
        base_rate=args.rate,
        burst_factor=args.burst_factor,
        hot_exponent=args.hot_exponent,
        deadline_s=args.deadline_ms / 1e3 if args.deadline_ms > 0 else None,
        mode=args.mode,
    )
    cluster_mode = (
        args.replicas > 1
        or args.hedge_after > 0
        or args.reload_at is not None
        or args.faults is not None
    )
    if cluster_mode:
        config = ClusterReplayConfig(
            replicas=args.replicas,
            queue_capacity=args.queue_capacity,
            hedge_after_s=args.hedge_after / 1e3 if args.hedge_after > 0 else None,
            reload_at=args.reload_at,
            faults=args.faults,
            **base,
        )
        report = run_cluster_replay(config)
        print(format_cluster_report(report))
    else:
        config = ReplayConfig(**base, **_parse_slow_window(args.slow))
        report = run_slo_replay(config)
        print(format_slo_report(report))
    out = Path(args.out) if args.out else Path(args.out_dir) / "slo_report.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(out, json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


def cmd_bench(args) -> int:
    """Run (or check) the canonical perf suite; gate on a baseline.

    Exit codes: 0 on success, 4 when the baseline compare finds a
    regression and ``--warn-only`` is not set.
    """
    from repro.obs import bench as bench_mod

    if args.check:
        current = json.loads(Path(args.check).read_text(encoding="utf-8"))
        print(f"checking existing snapshot {args.check}")
    else:
        config = (
            bench_mod.BenchConfig.quick_preset(seed=args.seed)
            if args.quick
            else bench_mod.BenchConfig.full_preset(seed=args.seed)
        )
        sections = (
            tuple(part.strip() for part in args.sections.split(",") if part.strip())
            if args.sections
            else ()
        )
        current, path = bench_mod.run_bench(config, args.out_dir, sections)
        print(bench_mod.format_snapshot(current))
        print(f"wrote {path}")
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
        result = bench_mod.compare_bench(current, baseline, threshold=args.threshold)
        print()
        print(bench_mod.format_compare(result))
        if result["regressions"] and not args.warn_only:
            return 4
    return 0


def cmd_drift(args) -> int:
    """Run the popularity-shift scenario and summarize cache vs static.

    Prints a per-day table (hit rates, batches trained, drift flags,
    turnover) plus the post-shift margins and the refresh traffic the
    cache shipped.  ``--out`` writes the full report as sorted-key JSON
    whose bytes are a pure function of the flags — two same-seed runs
    compare equal with ``cmp``.
    """
    from repro.resilience.atomic import atomic_write_text
    from repro.train.popshift import PopShiftConfig, run_popularity_shift

    config = PopShiftConfig(
        dataset=args.dataset,
        scale=args.scale,
        samples_per_day=args.samples_per_day,
        num_days=args.days,
        shift_day=args.shift_day,
        seed=args.seed,
        batch_size=args.batch_size,
        budget_bytes=args.budget_bytes,
    )
    report = run_popularity_shift(config)

    cal = report["calibration"]
    print(
        f"popularity shift: {args.dataset}/{args.scale} seed={args.seed} "
        f"days={args.days} shift_day={args.shift_day}"
    )
    print(
        f"calibration: threshold={cal['threshold']} "
        f"hot_input_fraction={cal['hot_input_fraction']:.3f} "
        f"hot_bytes={cal['hot_bytes']}"
    )
    print()
    header = (
        f"{'day':>3}  {'head':<7} {'static hit':>10} {'cached hit':>10} "
        f"{'online':>7} {'b.stat':>6} {'b.cach':>6} {'drift':>5}  turnover"
    )
    print(header)
    for entry in report["days"]:
        turnover = entry["turnover"]
        turn = (
            f"+{turnover['promoted']}/-{turnover['demoted']}" if turnover else "-"
        )
        print(
            f"{entry['day']:>3}  {'rotated' if entry['rotated'] else 'base':<7} "
            f"{entry['static']['hit_rate']:>10.3f} "
            f"{entry['cached']['hit_rate']:>10.3f} "
            f"{entry['cached']['online_hit_rate']:>7.3f} "
            f"{entry['static']['batches']:>6} "
            f"{entry['cached']['batches']:>6} "
            f"{'yes' if entry['drift']['drifted'] else 'no':>5}  {turn}"
        )
    post = report["post_shift"]
    print()
    print(
        f"post-shift ({post['days']} days, {post['test_samples']} test samples):"
    )
    print(
        f"  hot-access hit rate  static={post['static_hit_rate']:.3f} "
        f"cached={post['cached_hit_rate']:.3f} margin={post['hit_margin']:+.3f}"
    )
    print(
        f"  accuracy             static={post['static_accuracy']:.4f} "
        f"cached={post['cached_accuracy']:.4f} margin={post['accuracy_margin']:+.4f}"
    )
    print(
        f"  test loss            static={post['static_loss']:.4f} "
        f"cached={post['cached_loss']:.4f} margin={post['loss_margin']:+.4f}"
    )
    added = sum(entry["added"] for entry in report["recalibration"].values())
    removed = sum(entry["removed"] for entry in report["recalibration"].values())
    added_bytes = sum(
        entry["added_bytes"] for entry in report["recalibration"].values()
    )
    counters = report["counters"]
    print(
        f"  refresh traffic      +{added}/-{removed} rows "
        f"({added_bytes} bytes) vs frozen calibration"
    )
    print(
        f"  cache counters       promotions={counters['hotcache.promotions']} "
        f"demotions={counters['hotcache.demotions']} "
        f"rebalances={counters['hotcache.rebalances']} "
        f"repacks={counters['hotcache.repack.events']}"
    )
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(out, json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    return 0


def _normalize_argv(argv: list[str] | None) -> list[str]:
    """Back-compat shim: ``repro trace <dataset/flags>`` implies ``trace run``."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    i = 0
    while i < len(argv) and argv[i].startswith("-"):
        i += 1
    if i < len(argv) and argv[i] == "trace":
        follower = argv[i + 1] if i + 1 < len(argv) else None
        if follower not in ("run", "analyze", "-h", "--help"):
            argv.insert(i + 1, "run")
    return argv


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Failures exit nonzero with a one-line error on stderr; pass
    ``--traceback`` to re-raise with the full stack instead.  ``bench``
    additionally exits 4 when the baseline compare finds a regression.
    """
    args = build_parser().parse_args(_normalize_argv(argv))
    handlers = {
        "info": cmd_info,
        "preprocess": cmd_preprocess,
        "train": cmd_train,
        "simulate": cmd_simulate,
        "report": cmd_report,
        "trace": cmd_trace,
        "serve-bench": cmd_serve_bench,
        "bench": cmd_bench,
        "drift": cmd_drift,
        "certify": cmd_certify,
        "checkpoint": cmd_checkpoint,
    }
    try:
        return handlers[args.command](args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except GuardAbort as exc:
        if args.traceback:
            raise
        print(f"error: GuardAbort[{exc.guard}]: {exc}", file=sys.stderr)
        for hint in exc.hints():
            print(f"  {hint}", file=sys.stderr)
        if exc.guard == "numeric":
            print(
                "  hint: raise the rollback budget (--guards rollbacks=N), "
                "lower --lr, or inspect the quarantine ledger for dirty input",
                file=sys.stderr,
            )
        elif exc.guard == "ingest":
            print(
                "  hint: relax the policy (--validate clamp) or fix the "
                "records listed in the ledger",
                file=sys.stderr,
            )
        return 3
    except BrokenPipeError:
        # Downstream consumer (head, less) closed the pipe: normal for
        # paged output, not an error.  Detach stdout so the interpreter
        # shutdown doesn't print its own BrokenPipeError warning.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except Exception as exc:
        if args.traceback:
            raise
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
