"""repro: FAE — accelerating recommendation-system training via hot embeddings.

A from-scratch reproduction of "Accelerating Recommendation System
Training by Leveraging Popular Choices" (VLDB 2021).  Quickstart::

    from repro import (
        FAEConfig, fae_preprocess, build_model, workload_by_name,
        SyntheticClickLog, SyntheticConfig, criteo_kaggle_like,
        train_test_split, BaselineTrainer, FAETrainer,
    )

    schema = criteo_kaggle_like("small")
    log = SyntheticClickLog(schema, SyntheticConfig(num_samples=50_000))
    train, test = train_test_split(log)

    plan = fae_preprocess(train, FAEConfig(gpu_memory_budget=256 << 10,
                                           large_table_min_bytes=1 << 10),
                          batch_size=512)
    model = build_model(workload_by_name("RMC2"), schema=schema)
    result = FAETrainer(model, plan).train(train, test, epochs=2)

Subpackages: :mod:`repro.core` (the FAE framework), :mod:`repro.nn`
(numpy neural-net substrate), :mod:`repro.models` (DLRM/TBSM),
:mod:`repro.data` (synthetic Zipf-skewed click logs), :mod:`repro.hw`
(hardware cost-model simulator), :mod:`repro.train` (trainers),
:mod:`repro.analysis` (reporting).
"""

from repro.core import (
    Calibrator,
    EmbeddingClassifier,
    EmbeddingReplicator,
    FAEConfig,
    FAEPlan,
    InputProcessor,
    RandEmBox,
    ShuffleScheduler,
    SparseInputSampler,
    StatisticalOptimizer,
    fae_preprocess,
    load_fae_dataset,
    save_fae_dataset,
)
from repro.data import (
    BatchIterator,
    DatasetSchema,
    EmbeddingTableSpec,
    SyntheticClickLog,
    SyntheticConfig,
    criteo_kaggle_like,
    criteo_terabyte_like,
    dataset_by_name,
    taobao_like,
    train_test_split,
)
from repro.hw import (
    Cluster,
    PowerModel,
    TrainingSimulator,
    WorkloadCharacter,
    characterize,
)
from repro.models import DLRM, TBSM, WORKLOADS, build_model, workload_by_name
from repro.train import BaselineTrainer, FAETrainer, TrainingHistory

__version__ = "1.0.0"

__all__ = [
    "BatchIterator",
    "BaselineTrainer",
    "Calibrator",
    "Cluster",
    "DLRM",
    "DatasetSchema",
    "EmbeddingClassifier",
    "EmbeddingReplicator",
    "EmbeddingTableSpec",
    "FAEConfig",
    "FAEPlan",
    "FAETrainer",
    "InputProcessor",
    "PowerModel",
    "RandEmBox",
    "ShuffleScheduler",
    "SparseInputSampler",
    "StatisticalOptimizer",
    "SyntheticClickLog",
    "SyntheticConfig",
    "TBSM",
    "TrainingHistory",
    "TrainingSimulator",
    "WORKLOADS",
    "WorkloadCharacter",
    "build_model",
    "characterize",
    "criteo_kaggle_like",
    "criteo_terabyte_like",
    "dataset_by_name",
    "fae_preprocess",
    "load_fae_dataset",
    "save_fae_dataset",
    "taobao_like",
    "train_test_split",
    "workload_by_name",
    "__version__",
]
