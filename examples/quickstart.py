"""Quickstart: the FAE pipeline in ~40 lines.

Generates a Criteo-Kaggle-shaped synthetic click log, runs the static FAE
preprocessing (calibrate -> classify -> pack), trains a DLRM with the FAE
runtime, and prints the result next to a plain baseline run.

Run:  python examples/quickstart.py
"""

from repro import (
    BaselineTrainer,
    FAEConfig,
    FAETrainer,
    SyntheticClickLog,
    SyntheticConfig,
    criteo_kaggle_like,
    fae_preprocess,
    train_test_split,
)
from repro.models.dlrm import DLRM, DLRMConfig


def main() -> None:
    # 1. Data: a 1/1000-scale Kaggle-like log (45K samples, 26 tables).
    schema = criteo_kaggle_like("small")
    log = SyntheticClickLog(schema, SyntheticConfig(num_samples=40_000, seed=0))
    train, test = train_test_split(log, test_fraction=0.15, seed=0)
    print(schema.describe())

    # 2. Static FAE preprocessing.  The GPU budget scales with the data
    #    (256 MB at paper scale -> 256 KB at 1/1000 scale).
    config = FAEConfig(
        gpu_memory_budget=256 * 1024,
        large_table_min_bytes=1024,
        chunk_size=64,
        seed=0,
    )
    plan = fae_preprocess(train, config, batch_size=256)
    print("FAE plan:", plan.summary())

    # 3. Train with the FAE runtime (hot batches on replicas, cold on
    #    masters, adaptive hot/cold interleaving).
    model = DLRM(schema, DLRMConfig("13-64-32-16", "64-1", seed=1))
    result = FAETrainer(model, plan, lr=0.15).train(train, test, epochs=2)
    print(
        f"FAE:      test accuracy {result.final_test_accuracy:.4f} "
        f"({result.sync_events} hot-bag syncs, final rate R({result.schedule_rates[-1]}))"
    )

    # 4. Baseline for comparison: same model/seed, plain shuffled SGD.
    baseline_model = DLRM(schema, DLRMConfig("13-64-32-16", "64-1", seed=1))
    baseline = BaselineTrainer(baseline_model, lr=0.15).train(
        train, test, epochs=2, batch_size=256
    )
    print(f"baseline: test accuracy {baseline.final_test_accuracy:.4f}")


if __name__ == "__main__":
    main()
