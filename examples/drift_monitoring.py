"""Production-style drift monitoring for a deployed FAE plan.

Item popularity moves day over day; the calibrated hot set slowly stops
covering the traffic.  This example simulates three days of logs — two
from the original distribution, one after a popularity shift — runs the
drift detector on each, and, once drift fires, recalibrates and reports
what changed (rows added/removed per hot bag, replica-refresh traffic).

Run:  python examples/drift_monitoring.py
"""

from repro import (
    FAEConfig,
    SyntheticClickLog,
    SyntheticConfig,
    criteo_kaggle_like,
    fae_preprocess,
)
from repro.core import DriftDetector, recalibration_diff
from repro.obs import get_registry


def main() -> None:
    registry = get_registry()
    registry.reset()
    schema = criteo_kaggle_like("small")
    config = FAEConfig(
        gpu_memory_budget=256 * 1024,
        large_table_min_bytes=1024,
        chunk_size=64,
        seed=1,
    )

    # Day 0: calibrate the deployed plan.
    day0 = SyntheticClickLog(schema, SyntheticConfig(num_samples=40_000, seed=100))
    plan = fae_preprocess(day0, config, batch_size=256)
    print(f"deployed plan: {plan.summary()}\n")

    detector = DriftDetector(
        plan.bags, plan.hot_input_fraction, tolerance=0.15, seed=0
    )

    # Days 1-2 come from the same distribution (seed family 100 keeps the
    # popularity permutation); day 3's permutation is different — a
    # popularity shift (trending items changed).
    windows = {
        "day 1 (same distribution)": SyntheticClickLog(
            schema, SyntheticConfig(num_samples=10_000, seed=100)
        ),
        "day 2 (same distribution)": SyntheticClickLog(
            schema, SyntheticConfig(num_samples=10_000, seed=100)
        ),
        "day 3 (popularity shift)": SyntheticClickLog(
            schema, SyntheticConfig(num_samples=10_000, seed=777)
        ),
    }

    drifted_window = None
    for label, window in windows.items():
        report = detector.check(window)
        registry.counter("drift.checks").inc()
        registry.gauge("drift.relative_drop").set(report.relative_drop)
        registry.histogram("drift.hot_input_fraction").observe(report.hot_input_fraction)
        if report.drifted:
            registry.counter("drift.detected").inc()
        flag = "DRIFT" if report.drifted else "ok"
        print(
            f"{label}: hot inputs {100 * report.hot_input_fraction:5.1f}% "
            f"(baseline {100 * report.baseline_hot_input_fraction:.1f}%), "
            f"drop {100 * report.relative_drop:5.1f}%  [{flag}]"
        )
        if report.drifted:
            print(f"  least-covered table: {report.worst_table()} "
                  f"({100 * report.per_table_coverage[report.worst_table()]:.1f}% coverage)")
            drifted_window = window

    if drifted_window is None:
        print("\nno drift detected; nothing to do")
        return

    # Recalibrate on a fresh sample of the new traffic.
    print("\nrecalibrating on the shifted traffic...")
    new_day = SyntheticClickLog(schema, SyntheticConfig(num_samples=40_000, seed=777))
    new_plan = fae_preprocess(new_day, config, batch_size=256)
    print(f"new plan: {new_plan.summary()}")

    diff = recalibration_diff(plan.bags, new_plan.bags)
    added_rows = sum(a for a, _ in diff.values())
    removed_rows = sum(r for _, r in diff.values())
    refresh_bytes = sum(
        a * new_plan.bags[name].dim * 4 for name, (a, _r) in diff.items()
    )
    print(f"hot-set churn: +{added_rows} / -{removed_rows} rows; "
          f"replica refresh ships {refresh_bytes / 1024:.0f} KiB per GPU")

    registry.counter("drift.recalibrations").inc()

    # Verify the new plan clears the detector.
    fresh = DriftDetector(new_plan.bags, new_plan.hot_input_fraction, seed=0)
    verdict = fresh.check(
        SyntheticClickLog(schema, SyntheticConfig(num_samples=10_000, seed=777))
    )
    print(f"post-recalibration check: drop {100 * verdict.relative_drop:.1f}% "
          f"-> {'DRIFT' if verdict.drifted else 'ok'}")

    # The whole monitoring loop is visible in the metrics registry —
    # exactly what a production poller would scrape.
    print("\ntelemetry snapshot:")
    for name, summary in registry.snapshot().items():
        if name.startswith(("drift.", "fae.sync.")):
            if summary["kind"] == "histogram":
                print(f"  {name}: mean {summary['mean']:g} over {summary['count']} checks")
            else:
                print(f"  {name}: {summary['value']:g}")


if __name__ == "__main__":
    main()
