"""Multi-GPU FAE with the simulated distributed substrate.

Demonstrates the paper's actual execution model end to end:

1. plain data parallelism (``DataParallelTrainer``) and its core
   invariant — k replicas with all-reduced gradients stay bit-identical
   and match single-device full-batch training;
2. distributed FAE (``DistributedFAETrainer``): per-GPU hot-bag replicas,
   cold batches against the shared CPU master tables, the fused
   all-reduce, and hot<->cold synchronization;
3. the collective-traffic accounting that feeds the hardware cost model.

Run:  python examples/distributed_training.py
"""

import numpy as np

from repro import (
    FAEConfig,
    FAETrainer,
    SyntheticClickLog,
    SyntheticConfig,
    criteo_kaggle_like,
    fae_preprocess,
    train_test_split,
)
from repro.data.loader import batch_from_log
from repro.dist import DataParallelTrainer, DistributedFAETrainer
from repro.models.dlrm import DLRM, DLRMConfig

WORLD_SIZE = 4


def build_replicas(schema, seed, count):
    return [DLRM(schema, DLRMConfig("13-64-32-16", "64-1", seed=seed)) for _ in range(count)]


def main() -> None:
    schema = criteo_kaggle_like("small")
    log = SyntheticClickLog(schema, SyntheticConfig(num_samples=30_000, seed=8))
    train, test = train_test_split(log, 0.15, seed=0)

    # --- 1. Pure data parallelism & the lock-step invariant -----------
    replicas = build_replicas(schema, seed=3, count=WORLD_SIZE)
    dp = DataParallelTrainer(replicas, lr=0.15)
    for start in range(0, 4096, 256):
        dp.step(batch_from_log(train, np.arange(start, start + 256)))
    print(f"data-parallel: {WORLD_SIZE} replicas, max divergence "
          f"{dp.max_divergence():.2e} after 16 steps")
    print(f"  collective traffic: {dp.group.bytes_communicated / 2**20:.1f} MiB "
          f"across {dp.group.collective_calls} collectives")

    # --- 2. Distributed FAE ------------------------------------------
    config = FAEConfig(
        gpu_memory_budget=256 * 1024,
        large_table_min_bytes=1024,
        chunk_size=64,
        seed=2,
    )
    plan = fae_preprocess(train, config, batch_size=256, drop_last=True)
    print(f"\nFAE plan: {plan.summary()}")

    replicas = build_replicas(schema, seed=4, count=WORLD_SIZE)
    trainer = DistributedFAETrainer(replicas, plan, lr=0.15)
    result = trainer.train(train, test, epochs=2)
    print(f"distributed FAE ({WORLD_SIZE} GPUs): test accuracy "
          f"{result.final_test_accuracy:.4f}, {result.sync_events} hot-bag syncs")
    print(f"  dense divergence {trainer.max_dense_divergence():.2e}, "
          f"hot divergence {trainer.max_hot_divergence():.2e}")

    # --- 3. Equivalence with single-device FAE ------------------------
    single = DLRM(schema, DLRMConfig("13-64-32-16", "64-1", seed=4))
    FAETrainer(single, plan, lr=0.15).train(train, test, epochs=2)
    worst = 0.0
    for name in single.tables:
        gap = np.abs(
            trainer.replicas[0].tables[name].weight.value
            - single.tables[name].weight.value
        ).max()
        worst = max(worst, float(gap))
    print(f"\nmax table gap vs single-device FAE: {worst:.2e} "
          "(distributed execution is a bit-faithful reordering)")


if __name__ == "__main__":
    main()
