"""Session-based recommendation with TBSM + FAE (the Taobao workload).

TBSM consumes a user-behaviour *sequence* — 21 (item, category) pairs per
sample — so a single input performs 43 embedding lookups and is hot only
if every one of them hits a hot row.  This example shows FAE handling the
sequence workload: the adaptive scheduler's rate trace is printed so you
can watch Eq. 7 react to the test loss.

Run:  python examples/session_recommendation_tbsm.py
"""

from repro import (
    BaselineTrainer,
    FAEConfig,
    FAETrainer,
    SyntheticClickLog,
    SyntheticConfig,
    build_model,
    fae_preprocess,
    taobao_like,
    train_test_split,
    workload_by_name,
)


def main() -> None:
    schema = taobao_like("small")
    log = SyntheticClickLog(schema, SyntheticConfig(num_samples=12_000, seed=5))
    train, test = train_test_split(log, test_fraction=0.15, seed=2)
    print(schema.describe())
    lookups = schema.lookups_per_sample()
    print(f"each sample performs {lookups} embedding lookups "
          f"(user + 21 items + 21 categories)\n")

    config = FAEConfig(
        gpu_memory_budget=256 * 1024,  # paper: 256 MB vs 0.3 GB of tables
        large_table_min_bytes=1024,
        chunk_size=32,
        seed=5,
    )
    plan = fae_preprocess(train, config, batch_size=128)
    print(f"FAE plan: {plan.summary()}")
    print("note how 43 lookups/sample makes hot inputs rarer than for "
          "DLRM at the same per-table coverage\n")

    spec = workload_by_name("RMC1")
    fae_model = build_model(spec, schema=schema, seed=9)
    fae = FAETrainer(fae_model, plan, lr=0.1).train(train, test, epochs=2)

    print("scheduler rate trace (Eq. 7):", fae.schedule_rates)
    segments = [p.segment_kind for p in fae.history.points]
    print("segment order:", " ".join(segments[:16]), "...")

    baseline_model = build_model(spec, schema=schema, seed=9)
    baseline = BaselineTrainer(baseline_model, lr=0.1).train(
        train, test, epochs=2, batch_size=128
    )

    print(f"\nvalidation accuracy: baseline {baseline.final_test_accuracy:.4f}  "
          f"FAE {fae.final_test_accuracy:.4f}")
    print(f"hot-bag syncs: {fae.sync_events} "
          f"({fae.sync_bytes / 1024:.0f} KiB moved)")


if __name__ == "__main__":
    main()
