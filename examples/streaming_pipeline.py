"""FAE as a streaming operator: calibrate and pack without materializing.

A Terabyte-scale click log never fits in memory.  This example runs the
full FAE front-end at constant memory over a chunked stream:

- pass 1 — :class:`StreamingCalibrator`: Count-Min Sketches replace the
  per-row counters, a Bernoulli sample replaces the index draw, and the
  standard Statistical Optimizer converges on the threshold;
- pass 2 — :class:`StreamingPacker`: each chunk is classified against
  the hot bags and pure-hot / pure-cold mini-batches are emitted as soon
  as they fill, feeding a trainer directly.

Run:  python examples/streaming_pipeline.py
"""

import numpy as np

from repro import FAEConfig, criteo_kaggle_like
from repro.core import StreamingCalibrator, StreamingPacker
from repro.data import SyntheticClickStream
from repro.models.dlrm import DLRM, DLRMConfig
from repro.nn import BCEWithLogits, SGD


def main() -> None:
    schema = criteo_kaggle_like("small")
    stream = SyntheticClickStream(
        schema, total_samples=60_000, chunk_size=4096, seed=9
    )
    print(f"stream: {len(stream):,} samples in {stream.num_chunks} chunks "
          f"of {stream.chunk_size}")

    config = FAEConfig(
        gpu_memory_budget=256 * 1024,
        large_table_min_bytes=1024,
        chunk_size=64,
        sample_rate=0.25,
        seed=9,
    )

    # ---- pass 1: one-pass sketched calibration -----------------------
    calibration = StreamingCalibrator(config, epsilon=1e-4).calibrate(stream)
    hot_rows = sum(bag.num_hot for bag in calibration.bags.values())
    print(f"pass 1: threshold {calibration.threshold:g}, {hot_rows:,} hot rows")
    # Sketch memory is CONSTANT in the table size: the same ~12 MiB that
    # looks extravagant at this 1/1000 scale replaces ~1.9 GiB of exact
    # counters at the paper's Terabyte geometry (238M rows x 8 B).
    paper_counters = 238e6 * 8 / 2**30
    print(f"  sketch memory: {calibration.sketch_bytes / 2**20:.1f} MiB, "
          f"independent of table size (exact counters at paper scale: "
          f"{paper_counters:.1f} GiB)")

    # ---- pass 2: incremental packing + online training ----------------
    model = DLRM(schema, DLRMConfig("13-64-32-16", "64-1", seed=1))
    loss_fn = BCEWithLogits()
    optimizer = SGD(model.parameters(), lr=0.15)
    packer = StreamingPacker(calibration.bags, batch_size=256)

    losses = []
    def train_on(batch):
        logits = model.forward(batch)
        losses.append(loss_fn.forward(logits, batch.labels))
        model.backward(loss_fn.backward())
        optimizer.step()

    for start, chunk in stream:
        for batch in packer.feed(start, chunk):
            train_on(batch)
    for batch in packer.flush():
        train_on(batch)

    print(f"pass 2: trained on {packer.emitted['hot']} hot + "
          f"{packer.emitted['cold']} cold mini-batches as they were packed")
    print(f"loss: first-10 avg {np.mean(losses[:10]):.4f} -> "
          f"last-10 avg {np.mean(losses[-10:]):.4f}")


if __name__ == "__main__":
    main()
