"""Capacity planning with the hardware simulator.

A systems-engineering use of the cost model: given the paper's Table I
workloads, how many GPUs should a training job reserve, how much GPU
memory should FAE budget for hot embeddings, and what does each choice
cost in wall-clock and energy?  All numbers come from the calibrated
analytic simulator (no GPU required).

Run:  python examples/capacity_planning.py
"""

from repro import Cluster, PowerModel, TrainingSimulator, WORKLOADS, characterize
from repro.analysis import format_table, series_table


def gpu_count_sweep() -> None:
    print("=== GPU-count sweep: 10-epoch minutes (baseline vs FAE) ===")
    rows = []
    for name, spec in sorted(WORKLOADS.items()):
        workload = characterize(spec)
        cells = [f"{name} ({spec.dataset})"]
        for gpus in (1, 2, 4):
            sim = TrainingSimulator(Cluster(num_gpus=gpus), workload)
            base = sim.training_minutes("baseline", epochs=10)
            fae = sim.training_minutes("fae", epochs=10)
            cells.append(f"{base:6.0f}/{fae:6.0f} ({base / fae:.2f}x)")
        rows.append(cells)
    print(format_table(["workload", "1 GPU", "2 GPUs", "4 GPUs"], rows))
    print()


def memory_budget_sweep() -> None:
    print("=== Hot-embedding budget sweep (RMC3 / Terabyte, 4 GPUs) ===")
    budgets_mb = (32, 128, 256, 512, 2048)
    speedups = []
    hot_pct = []
    for budget_mb in budgets_mb:
        workload = characterize(WORKLOADS["RMC3"], gpu_memory_budget=budget_mb * 2**20)
        hot_pct.append(100 * workload.hot_fraction)
        speedups.append(TrainingSimulator(Cluster(num_gpus=4), workload).speedup())
    print(series_table("budget MB", ["hot inputs %", "speedup"], budgets_mb, [hot_pct, speedups]))
    print("-> the paper's L = 256 MB sits at the knee of this curve\n")


def energy_report() -> None:
    print("=== Energy per epoch on 4 GPUs ===")
    pm = PowerModel()
    rows = []
    for name, spec in sorted(WORKLOADS.items()):
        workload = characterize(spec)
        sim = TrainingSimulator(Cluster(num_gpus=4), workload)
        base, fae = sim.epoch("baseline"), sim.epoch("fae")
        base_kj = 4 * pm.energy_joules(base) / 1e3
        fae_kj = 4 * pm.energy_joules(fae) / 1e3
        rows.append(
            [
                name,
                f"{base_kj:8.0f}",
                f"{fae_kj:8.0f}",
                f"{100 * (1 - fae_kj / base_kj):5.1f}%",
                f"{pm.reduction_percent(base, fae):4.1f}%",
            ]
        )
    print(
        format_table(
            ["workload", "base kJ", "FAE kJ", "energy saved", "avg power saved"],
            rows,
        )
    )


def main() -> None:
    gpu_count_sweep()
    memory_budget_sweep()
    energy_report()


if __name__ == "__main__":
    main()
