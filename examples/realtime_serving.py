"""Real-time recommendation serving with hot-resident embeddings.

Trains a small DLRM, then uses the serving companion two ways:

1. **functional** — the :class:`InferenceEngine` ranks candidate items
   for live request contexts and classifies requests hot/cold against
   the FAE plan's bags;
2. **performance** — the :class:`ServingSimulator` prices the same
   deployment on the paper's hardware: latency percentiles and
   saturation throughput for CPU-embedding vs hot-resident serving.

Run:  python examples/realtime_serving.py
"""

import numpy as np

from repro import (
    Cluster,
    FAEConfig,
    FAETrainer,
    SyntheticClickLog,
    SyntheticConfig,
    characterize,
    criteo_kaggle_like,
    fae_preprocess,
    train_test_split,
    workload_by_name,
)
from repro.models.dlrm import DLRM, DLRMConfig
from repro.obs import get_registry
from repro.serve import InferenceEngine, ServingSimulator


def main() -> None:
    registry = get_registry()
    registry.reset()
    # --- Train a model with FAE --------------------------------------
    schema = criteo_kaggle_like("small")
    log = SyntheticClickLog(schema, SyntheticConfig(num_samples=30_000, seed=21))
    train, test = train_test_split(log, 0.15, seed=3)
    config = FAEConfig(
        gpu_memory_budget=256 * 1024, large_table_min_bytes=1024, chunk_size=64, seed=3
    )
    plan = fae_preprocess(train, config, batch_size=256)
    model = DLRM(schema, DLRMConfig("13-64-32-16", "64-1", seed=5))
    FAETrainer(model, plan, lr=0.15).train(train, test, epochs=2)

    # --- Rank candidates for a live request --------------------------
    engine = InferenceEngine(model, hot_bags=plan.bags)
    request_row = 7
    context = {name: test.sparse[name][request_row] for name in schema.table_names}
    big_table = max(schema.tables, key=lambda t: t.num_rows).name
    candidates = np.random.default_rng(0).choice(
        schema.table(big_table).num_rows, size=200, replace=False
    )
    ranked = engine.rank_candidates(
        dense=test.dense[request_row],
        sparse_context=context,
        candidate_table=big_table,
        candidate_ids=candidates,
        top_k=5,
    )
    print("top-5 candidates for request #7:")
    for item, score in zip(ranked.item_ids, ranked.scores):
        print(f"  item {item:6d}  p(click) = {score:.4f}")

    hot_mask = engine.hot_request_mask(test)
    print(f"\n{100 * hot_mask.mean():.1f}% of live requests are fully hot "
          "(servable without touching host memory)")

    # Score every test request through the engine so the latency
    # histogram fills up, then read it back from the metrics registry.
    engine.predict_proba(test)
    latency = registry.histogram("serve.request.latency")
    print(f"engine telemetry: {registry.counter('serve.batches').value:.0f} "
          f"forward batches, model-forward latency "
          f"p50 {1e3 * latency.percentile(50):.2f} ms / "
          f"p99 {1e3 * latency.percentile(99):.2f} ms")

    # --- Price the deployment on the paper's server ------------------
    workload = characterize(workload_by_name("RMC2"))
    sim = ServingSimulator(Cluster(num_gpus=1), workload, max_batch=64, max_wait=2e-3)
    base_rate = sim.saturation_rate("cpu-embedding")
    print(f"\nserving simulation (RMC2 on one V100, "
          f"hot inputs {100 * workload.hot_fraction:.0f}%):")
    print(f"  saturation: cpu-embedding {base_rate:,.0f} req/s, "
          f"hot-resident {sim.saturation_rate('hot-resident'):,.0f} req/s")
    for load in (0.5, 0.9):
        cpu = sim.simulate("cpu-embedding", load * base_rate, num_requests=4000)
        hot = sim.simulate("hot-resident", load * base_rate, num_requests=4000)
        print(f"  load {load:.0%}: p50 {1e3 * cpu.p50:.1f} -> {1e3 * hot.p50:.1f} ms, "
              f"p99 {1e3 * cpu.p99:.1f} -> {1e3 * hot.p99:.1f} ms")


if __name__ == "__main__":
    main()
