"""Click-through-rate prediction with DLRM + FAE, end to end.

The scenario from the paper's introduction: an advertising platform
trains a DLRM on a Criteo-style click log whose embedding tables dwarf
GPU memory.  This example walks the full production flow:

1. calibrate the hot-embedding threshold against a GPU budget,
2. inspect what the calibrator found (threshold search, hot coverage),
3. persist the preprocessed dataset in the FAE format,
4. reload it and train with the FAE runtime,
5. report accuracy next to the baseline and the *simulated* wall-clock
   benefit the same plan would deliver on the paper's 4xV100 server.

Run:  python examples/ctr_prediction_dlrm.py
"""

from pathlib import Path
from tempfile import TemporaryDirectory

from repro import (
    BaselineTrainer,
    Cluster,
    FAEConfig,
    FAETrainer,
    SyntheticClickLog,
    SyntheticConfig,
    TrainingSimulator,
    criteo_kaggle_like,
    fae_preprocess,
    load_fae_dataset,
    train_test_split,
    workload_by_name,
)
from repro.core.pipeline import FAEPlan
from repro.hw.workload import characterize_from_plan
from repro.models.dlrm import DLRM, DLRMConfig


def calibrate_and_pack(train_log) -> FAEPlan:
    config = FAEConfig(
        gpu_memory_budget=256 * 1024,  # 256 MB at paper scale / 1000
        large_table_min_bytes=1024,
        chunk_size=64,
        sample_rate=0.05,
        seed=3,
    )
    plan = fae_preprocess(train_log, config, batch_size=256)

    calibration = plan.calibration
    print(f"calibrated threshold: {plan.threshold:g} "
          f"({calibration.result.iterations} candidate thresholds evaluated)")
    print(f"  sampling   {calibration.sampling_seconds * 1e3:7.2f} ms")
    print(f"  profiling  {calibration.profiling_seconds * 1e3:7.2f} ms")
    print(f"  optimizing {calibration.optimize_seconds * 1e3:7.2f} ms")
    print(f"  plan: {plan.summary()}")
    return plan


def main() -> None:
    schema = criteo_kaggle_like("small")
    log = SyntheticClickLog(schema, SyntheticConfig(num_samples=50_000, seed=11))
    train, test = train_test_split(log, test_fraction=0.15, seed=1)
    print(schema.describe())
    print(f"click-through base rate: {train.base_rate():.3f}\n")

    plan = calibrate_and_pack(train)

    # Persist + reload: subsequent training jobs skip preprocessing.
    with TemporaryDirectory() as tmp:
        path = Path(tmp) / "kaggle_small.fae.npz"
        plan.save(path)
        dataset, _bags, threshold = load_fae_dataset(path)
        print(f"\nreloaded FAE dataset: {len(dataset.hot_batches)} hot / "
              f"{len(dataset.cold_batches)} cold batches @ threshold {threshold:g}")

    arch = DLRMConfig(bottom_mlp="13-128-64-16", top_mlp="128-64-1", seed=7)
    fae_model = DLRM(schema, arch)
    fae = FAETrainer(fae_model, plan, lr=0.15).train(train, test, epochs=2)

    base_model = DLRM(schema, arch)
    baseline = BaselineTrainer(base_model, lr=0.15).train(
        train, test, epochs=2, batch_size=256
    )

    print(f"\naccuracy:  baseline {baseline.final_test_accuracy:.4f}  "
          f"FAE {fae.final_test_accuracy:.4f}")
    print(f"FAE synchronized hot bags {fae.sync_events} times "
          f"({fae.sync_bytes / 1024:.0f} KiB total)")

    # What would this plan buy on the paper's server?  Feed the measured
    # plan into the hardware simulator at 1/2/4 GPUs.  At 1/1000 scale
    # the 5% calibration sample sees far fewer distinct rows than at
    # paper scale, so the measured hot fraction (and hence the simulated
    # speedup) is a conservative lower bound; the analytic paper-scale
    # characterization is shown alongside for contrast.
    from repro import characterize

    measured = characterize_from_plan(workload_by_name("RMC2"), plan, schema)
    analytic = characterize(workload_by_name("RMC2"))
    print("\nsimulated wall-clock on Xeon-4116 + V100s (per epoch):")
    for label, workload, epochs_note in (
        ("measured plan (1/1000 scale)", measured, ""),
        ("analytic plan (paper scale)", analytic, ""),
    ):
        print(f"  {label}: hot inputs {100 * workload.hot_fraction:.1f}%")
        for gpus in (1, 2, 4):
            sim = TrainingSimulator(Cluster(num_gpus=gpus), workload)
            base_min = sim.epoch("baseline").minutes
            fae_min = sim.epoch("fae").minutes
            print(f"    {gpus} GPU(s): baseline {base_min:8.2f} min  "
                  f"FAE {fae_min:8.2f} min  ({base_min / fae_min:.2f}x)")


if __name__ == "__main__":
    main()
