#!/usr/bin/env python
"""Regenerate the committed bench seed baseline.

``repro bench`` gates PRs against ``benchmarks/baselines/BENCH_seed.json``
(warn-only in CI, hard gate for same-host local runs).  When a deliberate
perf change moves the canonical numbers, rerun this script and commit the
result alongside the change that moved them::

    PYTHONPATH=src python scripts/update_bench_baseline.py

The baseline is always the **quick** preset at seed 7 — the exact
configuration CI runs — so the compare is like-for-like.  The snapshot
filename is date-stamped by ``run_bench``; this script copies it to the
stable ``BENCH_seed.json`` name the workflow and tests reference.
"""

from __future__ import annotations

import argparse
import shutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.bench import BenchConfig, format_snapshot, run_bench  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "benchmarks" / "baselines" / "BENCH_seed.json"),
        help="baseline destination (default: benchmarks/baselines/BENCH_seed.json)",
    )
    args = parser.parse_args()

    destination = Path(args.out)
    snapshot, written = run_bench(
        BenchConfig.quick_preset(seed=args.seed), destination.parent
    )
    shutil.move(written, destination)
    print(format_snapshot(snapshot))
    print(f"baseline updated: {destination}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
