#!/usr/bin/env python
"""Run a command under a hard address-space cap (``RLIMIT_AS``).

CI uses this to prove the streaming preprocess is actually bounded: the
same ``repro preprocess`` invocation that succeeds with ``--stream`` and
a small ``--chunk-size`` dies with a MemoryError when it materializes
the whole log, at a cap comfortably between the two footprints.

Usage::

    python scripts/rss_cap.py --limit-mb 512 -- python -m repro preprocess ...

The limit applies to virtual address space, which upper-bounds RSS and —
unlike RSS itself — is enforceable without a cgroup.  The command runs
via ``os.execvp`` in this same process, so the limit cannot be escaped.
"""

from __future__ import annotations

import argparse
import os
import resource
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run a command under a hard RLIMIT_AS memory cap."
    )
    parser.add_argument(
        "--limit-mb", type=int, required=True, help="address-space cap in MiB"
    )
    parser.add_argument(
        "command", nargs=argparse.REMAINDER, help="command to run (prefix with --)"
    )
    args = parser.parse_args(argv)

    command = args.command
    if command and command[0] == "--":
        command = command[1:]
    if not command:
        parser.error("no command given")
    if args.limit_mb <= 0:
        parser.error("--limit-mb must be positive")

    limit = args.limit_mb * 1024 * 1024
    resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
    os.execvp(command[0], command)
    return 1  # unreachable; execvp replaces the process


if __name__ == "__main__":
    sys.exit(main())
