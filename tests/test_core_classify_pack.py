"""Unit tests for the Embedding Classifier, Input Processor, and FAE format."""

import numpy as np
import pytest

from repro.core import (
    EmbeddingClassifier,
    InputProcessor,
    all_hot_batch_probability,
    fae_preprocess,
    load_fae_dataset,
    save_fae_dataset,
)
from repro.core.calibrator import Calibrator


@pytest.fixture(scope="module")
def calibrated(tiny_log_module, tiny_config_module):
    output = Calibrator(tiny_config_module).calibrate(tiny_log_module)
    bags = EmbeddingClassifier(tiny_config_module).classify(
        output.profile, output.threshold
    )
    return output, bags


@pytest.fixture(scope="module")
def tiny_log_module(request):
    return request.getfixturevalue("tiny_log")


@pytest.fixture(scope="module")
def tiny_config_module(request):
    return request.getfixturevalue("tiny_fae_config")


class TestEmbeddingClassifier:
    def test_every_table_gets_a_bag(self, calibrated, tiny_log_module):
        _, bags = calibrated
        assert set(bags) == set(tiny_log_module.schema.table_names)

    def test_small_table_fully_hot(self, calibrated):
        _, bags = calibrated
        assert bags["table_02"].whole_table
        assert bags["table_02"].num_hot == 12

    def test_hot_ids_sorted_unique(self, calibrated):
        _, bags = calibrated
        for bag in bags.values():
            assert np.all(np.diff(bag.hot_ids) > 0)

    def test_hot_ids_meet_threshold(self, calibrated, tiny_log_module):
        output, bags = calibrated
        profile = output.profile
        for name, table_profile in profile.tables.items():
            cutoff = profile.min_count_for_threshold(output.threshold, name)
            hot = bags[name].hot_ids
            assert np.all(table_profile.counts[hot] >= cutoff)
            cold = np.setdiff1d(np.arange(bags[name].num_rows), hot)
            assert np.all(table_profile.counts[cold] < cutoff)

    def test_total_hot_bytes_fits_budget(self, calibrated, tiny_config_module):
        _, bags = calibrated
        total = EmbeddingClassifier.total_hot_bytes(bags)
        # The optimizer budgets against an upper CI; exact size may exceed
        # the estimate slightly but must stay in the same ballpark.
        assert total <= tiny_config_module.gpu_memory_budget * 1.2

    def test_hot_mask_roundtrip(self, calibrated):
        _, bags = calibrated
        bag = bags["table_00"]
        mask = bag.hot_mask()
        np.testing.assert_array_equal(np.flatnonzero(mask), bag.hot_ids)


class TestAllHotProbability:
    def test_fig4_collapse(self):
        """Fig 4: P(all-hot) collapses as the batch grows."""
        assert all_hot_batch_probability(0.99, 1) == pytest.approx(0.99)
        assert all_hot_batch_probability(0.99, 256) < 0.1
        assert all_hot_batch_probability(0.99, 1024) < 1e-4

    def test_monotone_in_batch(self):
        probs = [all_hot_batch_probability(0.98, b) for b in (1, 4, 16, 64, 256)]
        assert probs == sorted(probs, reverse=True)

    def test_edges(self):
        assert all_hot_batch_probability(1.0, 10_000) == 1.0
        assert all_hot_batch_probability(0.0, 2) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            all_hot_batch_probability(1.2, 4)
        with pytest.raises(ValueError):
            all_hot_batch_probability(0.5, 0)


class TestInputProcessor:
    def test_hot_inputs_only_touch_hot_rows(self, calibrated, tiny_log_module):
        _, bags = calibrated
        processor = InputProcessor(bags, seed=0)
        hot_mask = processor.classify_inputs(tiny_log_module)
        masks = {name: bag.hot_mask() for name, bag in bags.items()}
        hot_rows = np.flatnonzero(hot_mask)[:200]
        for i in hot_rows:
            for name, ids in tiny_log_module.sparse.items():
                assert masks[name][ids[i]].all()

    def test_cold_inputs_touch_a_cold_row(self, calibrated, tiny_log_module):
        _, bags = calibrated
        processor = InputProcessor(bags, seed=0)
        hot_mask = processor.classify_inputs(tiny_log_module)
        masks = {name: bag.hot_mask() for name, bag in bags.items()}
        cold_rows = np.flatnonzero(~hot_mask)[:200]
        for i in cold_rows:
            touches_cold = any(
                not masks[name][ids[i]].all()
                for name, ids in tiny_log_module.sparse.items()
            )
            assert touches_cold

    def test_pack_partitions_every_input(self, calibrated, tiny_log_module):
        _, bags = calibrated
        dataset = InputProcessor(bags, seed=0).pack(tiny_log_module, batch_size=64)
        packed = np.concatenate(dataset.hot_batches + dataset.cold_batches)
        assert len(packed) == len(tiny_log_module)
        assert len(np.unique(packed)) == len(tiny_log_module)

    def test_pack_purity(self, calibrated, tiny_log_module):
        _, bags = calibrated
        dataset = InputProcessor(bags, seed=0).pack(tiny_log_module, batch_size=64)
        for batch in dataset.hot_batches:
            assert dataset.hot_mask[batch].all()
        for batch in dataset.cold_batches:
            assert not dataset.hot_mask[batch].any()

    def test_drop_last(self, calibrated, tiny_log_module):
        _, bags = calibrated
        dataset = InputProcessor(bags, seed=0).pack(
            tiny_log_module, batch_size=64, drop_last=True
        )
        assert all(len(b) == 64 for b in dataset.hot_batches)
        assert all(len(b) == 64 for b in dataset.cold_batches)

    def test_batch_size_validation(self, calibrated, tiny_log_module):
        _, bags = calibrated
        with pytest.raises(ValueError):
            InputProcessor(bags).pack(tiny_log_module, batch_size=0)

    def test_missing_bag_raises(self, calibrated, tiny_log_module):
        _, bags = calibrated
        partial = {k: v for k, v in bags.items() if k != "table_00"}
        with pytest.raises(KeyError):
            InputProcessor(partial).classify_inputs(tiny_log_module)

    def test_hot_fraction_statistics(self, calibrated, tiny_log_module):
        _, bags = calibrated
        dataset = InputProcessor(bags, seed=0).pack(tiny_log_module, batch_size=64)
        assert 0 < dataset.hot_input_fraction < 1
        assert dataset.num_hot_inputs + (
            dataset.num_inputs - dataset.num_hot_inputs
        ) == len(tiny_log_module)


class TestFAEFormat:
    def test_roundtrip(self, tiny_plan, tmp_path):
        path = tmp_path / "dataset.npz"
        save_fae_dataset(path, tiny_plan.dataset, tiny_plan.bags, tiny_plan.threshold)
        dataset, bags, threshold = load_fae_dataset(path)
        assert threshold == tiny_plan.threshold
        assert dataset.batch_size == tiny_plan.dataset.batch_size
        np.testing.assert_array_equal(dataset.hot_mask, tiny_plan.dataset.hot_mask)
        assert len(dataset.hot_batches) == len(tiny_plan.dataset.hot_batches)
        for a, b in zip(dataset.hot_batches, tiny_plan.dataset.hot_batches):
            np.testing.assert_array_equal(a, b)
        assert set(bags) == set(tiny_plan.bags)
        for name in bags:
            np.testing.assert_array_equal(bags[name].hot_ids, tiny_plan.bags[name].hot_ids)
            assert bags[name].whole_table == tiny_plan.bags[name].whole_table

    def test_plan_save_helper(self, tiny_plan, tmp_path):
        path = tmp_path / "plan.npz"
        tiny_plan.save(path)
        _dataset, _bags, threshold = load_fae_dataset(path)
        assert threshold == tiny_plan.threshold

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_fae_dataset(tmp_path / "missing.npz")


class TestPipeline:
    def test_plan_summary_fields(self, tiny_plan, tiny_fae_config):
        assert tiny_plan.threshold in tiny_fae_config.threshold_grid
        assert tiny_plan.hot_bytes > 0
        assert 0 < tiny_plan.hot_input_fraction < 1
        summary = tiny_plan.summary()
        assert "hot" in summary

    def test_default_config(self, tiny_log):
        # The paper-default config has a 1 MiB large-table cutoff, so the
        # tiny tables are all de-facto hot and everything is hot.
        plan = fae_preprocess(tiny_log, batch_size=128)
        assert plan.hot_input_fraction == 1.0
        assert len(plan.dataset.cold_batches) == 0


class TestAllocationPolicies:
    def test_greedy_product_through_main_api(self, tiny_log, tiny_fae_config):
        threshold_plan = fae_preprocess(tiny_log, tiny_fae_config, batch_size=64)
        greedy_plan = fae_preprocess(
            tiny_log, tiny_fae_config, batch_size=64, allocation="greedy-product"
        )
        # Same budget; the product-optimal policy never loses hot inputs.
        assert greedy_plan.hot_bytes <= tiny_fae_config.gpu_memory_budget * 1.01
        assert (
            greedy_plan.hot_input_fraction
            >= threshold_plan.hot_input_fraction - 0.01
        )

    def test_unknown_allocation_rejected(self, tiny_log, tiny_fae_config):
        with pytest.raises(ValueError):
            fae_preprocess(tiny_log, tiny_fae_config, allocation="magic")
