"""Unit tests for repro.data.loader."""

import numpy as np
import pytest

from repro.data.loader import BatchIterator, MiniBatch, batch_from_log, train_test_split


class TestMiniBatch:
    def test_batch_from_log(self, tiny_log):
        indices = np.array([0, 5, 9])
        batch = batch_from_log(tiny_log, indices)
        assert len(batch) == 3
        assert batch.size == 3
        np.testing.assert_array_equal(batch.labels, tiny_log.labels[indices])
        assert batch.hot is None

    def test_hot_tag_propagates(self, tiny_log):
        batch = batch_from_log(tiny_log, np.array([1, 2]), hot=True)
        assert batch.hot is True

    def test_rejects_mismatched_arrays(self, tiny_log):
        with pytest.raises(ValueError):
            MiniBatch(
                dense=tiny_log.dense[:3],
                sparse={k: v[:2] for k, v in tiny_log.sparse.items()},
                labels=tiny_log.labels[:3],
                indices=np.arange(3),
            )


class TestBatchIterator:
    def test_covers_all_samples(self, tiny_log):
        iterator = BatchIterator(tiny_log, batch_size=128, shuffle=True, seed=0)
        seen = np.concatenate([b.indices for b in iterator])
        assert len(seen) == len(tiny_log)
        assert len(np.unique(seen)) == len(tiny_log)

    def test_len_without_drop_last(self, tiny_log):
        iterator = BatchIterator(tiny_log, batch_size=300)
        assert len(iterator) == (len(tiny_log) + 299) // 300
        assert len(list(iterator)) == len(iterator)

    def test_drop_last(self, tiny_log):
        iterator = BatchIterator(tiny_log, batch_size=300, drop_last=True)
        batches = list(iterator)
        assert len(batches) == len(tiny_log) // 300
        assert all(len(b) == 300 for b in batches)

    def test_shuffle_changes_order_across_epochs(self, tiny_log):
        iterator = BatchIterator(tiny_log, batch_size=256, shuffle=True, seed=1)
        first = next(iter(iterator)).indices
        second = next(iter(iterator)).indices
        assert not np.array_equal(first, second)

    def test_no_shuffle_is_sequential(self, tiny_log):
        iterator = BatchIterator(tiny_log, batch_size=100, shuffle=False)
        batch = next(iter(iterator))
        np.testing.assert_array_equal(batch.indices, np.arange(100))

    def test_rejects_bad_batch_size(self, tiny_log):
        with pytest.raises(ValueError):
            BatchIterator(tiny_log, batch_size=0)


class TestTrainTestSplit:
    def test_sizes(self, tiny_log):
        train, test = train_test_split(tiny_log, test_fraction=0.25, seed=0)
        assert len(test) == round(len(tiny_log) * 0.25)
        assert len(train) + len(test) == len(tiny_log)

    def test_disjoint_and_complete(self, tiny_log):
        train, test = train_test_split(tiny_log, test_fraction=0.2, seed=3)
        # Reconstruct which source rows each split drew by matching labels
        # via the dense features (unique with overwhelming probability).
        combined = np.vstack([train.dense, test.dense])
        assert combined.shape[0] == len(tiny_log)
        assert len(np.unique(combined[:, 0])) == len(tiny_log)

    def test_deterministic(self, tiny_log):
        a_train, _ = train_test_split(tiny_log, 0.1, seed=9)
        b_train, _ = train_test_split(tiny_log, 0.1, seed=9)
        np.testing.assert_array_equal(a_train.labels, b_train.labels)

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.2, 1.5])
    def test_rejects_bad_fraction(self, tiny_log, fraction):
        with pytest.raises(ValueError):
            train_test_split(tiny_log, fraction)
