"""Tests for the resilience layer: atomic writes, checkpoints, fault
injection, retry policies, and the trainers' recovery paths (crash/resume
trajectory equivalence, world shrink, and hot→cold degradation)."""

import numpy as np
import pytest

from repro.core import fae_preprocess
from repro.core.fae_format import load_fae_dataset
from repro.core.scheduler import ShuffleScheduler
from repro.data import train_test_split
from repro.data.loader import fetch_batch
from repro.dist import DistributedFAETrainer
from repro.models.dlrm import DLRM, DLRMConfig
from repro.nn.optim import SGD, Adagrad
from repro.obs import get_registry
from repro.resilience import (
    CheckpointCorruptionError,
    CheckpointError,
    CheckpointManager,
    FaultPlan,
    LoaderHiccup,
    PermanentRankFailure,
    RetryExhaustedError,
    RetryPolicy,
    TrainerCheckpoint,
    TransientCollectiveError,
    atomic_write,
    atomic_write_text,
    capture_training_state,
    latest_checkpoint,
    load_checkpoint,
    restore_training_state,
    save_checkpoint,
    verify_checkpoint,
    with_retries,
)
from repro.serve import InferenceEngine
from repro.train import FAETrainer


def small_dlrm(schema, seed=3):
    return DLRM(schema, DLRMConfig("4-8", "8-1", seed=seed))


def counter_value(name):
    return get_registry().counter(name).value


# ----------------------------------------------------------------------
# Atomic writes
# ----------------------------------------------------------------------


class TestAtomicWrite:
    def test_success_replaces_destination(self, tmp_path):
        target = tmp_path / "artifact.txt"
        target.write_text("old")
        with atomic_write(target) as tmp:
            tmp.write_text("new")
        assert target.read_text() == "new"
        assert list(tmp_path.iterdir()) == [target]

    def test_failure_leaves_destination_untouched(self, tmp_path):
        target = tmp_path / "artifact.txt"
        target.write_text("old")
        with pytest.raises(RuntimeError):
            with atomic_write(target) as tmp:
                tmp.write_text("half-written")
                raise RuntimeError("crash mid-write")
        assert target.read_text() == "old"
        # No stray temp files either.
        assert list(tmp_path.iterdir()) == [target]

    def test_temp_keeps_destination_suffix(self, tmp_path):
        # np.savez appends ".npz" to suffix-less paths; the temp file must
        # already end in ".npz" so the archive lands under the temp name.
        with atomic_write(tmp_path / "packed.npz") as tmp:
            assert tmp.suffix == ".npz"
            np.savez(tmp, x=np.arange(3))
        with np.load(tmp_path / "packed.npz") as archive:
            np.testing.assert_array_equal(archive["x"], np.arange(3))

    def test_atomic_write_text(self, tmp_path):
        path = atomic_write_text(tmp_path / "note.txt", "hello\n")
        assert path.read_text() == "hello\n"


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------


def _collective_fault_pattern(plan, calls):
    pattern = []
    for _ in range(calls):
        try:
            plan.check_collective()
            pattern.append(False)
        except TransientCollectiveError:
            pattern.append(True)
    return pattern


class TestFaultPlan:
    def test_same_seed_injects_identically(self):
        a = FaultPlan(seed=5, collective_failure_rate=0.3)
        b = FaultPlan(seed=5, collective_failure_rate=0.3)
        assert _collective_fault_pattern(a, 50) == _collective_fault_pattern(b, 50)

    def test_different_seeds_diverge(self):
        a = FaultPlan(seed=5, collective_failure_rate=0.3)
        b = FaultPlan(seed=6, collective_failure_rate=0.3)
        assert _collective_fault_pattern(a, 200) != _collective_fault_pattern(b, 200)

    def test_transient_failures_capped(self):
        plan = FaultPlan(seed=0, collective_failure_rate=0.9, max_collective_failures=3)
        fired = sum(_collective_fault_pattern(plan, 500))
        assert fired == 3

    def test_rank_death_fires_exactly_once(self):
        plan = FaultPlan(seed=0, rank_death=(1, 3))
        plan.check_collective()
        plan.check_collective()
        with pytest.raises(PermanentRankFailure) as excinfo:
            plan.check_collective("all_reduce")
        assert excinfo.value.rank == 1
        # Already fired: survivors' future collectives proceed.
        plan.check_collective()

    def test_eviction_fires_exactly_once(self):
        plan = FaultPlan(seed=0, hot_eviction_at=5)
        assert not plan.should_evict_hot(4)
        assert plan.should_evict_hot(5)
        assert not plan.should_evict_hot(6)

    def test_loader_hiccups_capped(self):
        plan = FaultPlan(seed=0, loader_hiccup_rate=0.9, max_loader_hiccups=2)
        fired = 0
        for _ in range(200):
            try:
                plan.check_loader()
            except LoaderHiccup:
                fired += 1
        assert fired == 2

    def test_parse_full_spec(self):
        plan = FaultPlan.parse("seed=7,collective=0.05,death=1@40,evict=80,loader=0.02")
        assert plan.seed == 7
        assert plan.collective_failure_rate == 0.05
        assert plan.rank_death == (1, 40)
        assert plan.hot_eviction_at == 80
        assert plan.loader_hiccup_rate == 0.02

    @pytest.mark.parametrize("spec", ["bogus=1", "collective", "death=1", "collective=x"])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(collective_failure_rate=1.0)
        with pytest.raises(ValueError):
            FaultPlan(rank_death=(0, 0))

    def test_state_roundtrip_resumes_fault_schedule(self):
        plan = FaultPlan(seed=9, collective_failure_rate=0.3)
        _collective_fault_pattern(plan, 25)
        state = plan.state_dict()
        expected = _collective_fault_pattern(plan, 50)

        fresh = FaultPlan(seed=9, collective_failure_rate=0.3)
        fresh.load_state_dict(state)
        assert _collective_fault_pattern(fresh, 50) == expected


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------


class TestRetry:
    def test_backoff_schedule(self):
        policy = RetryPolicy(base_delay=0.01, multiplier=2.0, max_delay=0.05)
        assert policy.delay(0) == pytest.approx(0.01)
        assert policy.delay(1) == pytest.approx(0.02)
        assert policy.delay(2) == pytest.approx(0.04)
        assert policy.delay(3) == pytest.approx(0.05)  # capped

    def test_recovers_after_transient_failures(self):
        recovered_before = counter_value("resilience.retry.recovered")
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientCollectiveError("flake")
            return "ok"

        policy = RetryPolicy(max_attempts=4, sleep_enabled=False)
        assert with_retries(flaky, policy=policy) == "ok"
        assert calls["n"] == 3
        assert counter_value("resilience.retry.recovered") == recovered_before + 1

    def test_exhaustion_raises_with_cause(self):
        def always_fails():
            raise LoaderHiccup("stalled")

        policy = RetryPolicy(max_attempts=3, sleep_enabled=False)
        with pytest.raises(RetryExhaustedError) as excinfo:
            with_retries(always_fails, policy=policy, name="loader")
        assert isinstance(excinfo.value.__cause__, LoaderHiccup)

    def test_permanent_failures_not_retried(self):
        calls = {"n": 0}

        def dies():
            calls["n"] += 1
            raise PermanentRankFailure(2)

        with pytest.raises(PermanentRankFailure):
            with_retries(dies, policy=RetryPolicy(max_attempts=5, sleep_enabled=False))
        assert calls["n"] == 1

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)


class TestRetryJitter:
    def test_zero_jitter_keeps_exact_exponential_schedule(self):
        policy = RetryPolicy()
        assert [policy.delay(i, salt=99) for i in range(4)] == [
            0.005,
            0.01,
            0.02,
            0.04,
        ]

    def test_schedule_is_a_pure_function_of_seed_and_salt(self):
        policy = RetryPolicy(jitter=0.5, seed=42)
        first = [policy.delay(i, salt=123) for i in range(6)]
        second = [policy.delay(i, salt=123) for i in range(6)]
        assert first == second
        # A fresh policy object with the same seed replays the same draws.
        replay = RetryPolicy(jitter=0.5, seed=42)
        assert [replay.delay(i, salt=123) for i in range(6)] == first

    def test_jittered_delays_stay_within_bounds(self):
        policy = RetryPolicy(
            jitter=0.3, seed=1, base_delay=0.01, multiplier=2.0, max_delay=1.0
        )
        for index in range(8):
            base = min(0.01 * 2.0**index, 1.0)
            delay = policy.delay(index, salt=7)
            assert base * 0.7 <= delay <= base * 1.3

    def test_seed_and_salt_decorrelate_schedules(self):
        length = 6
        base = [RetryPolicy(jitter=0.5, seed=1).delay(i, salt=3) for i in range(length)]
        other_seed = [
            RetryPolicy(jitter=0.5, seed=2).delay(i, salt=3) for i in range(length)
        ]
        other_salt = [
            RetryPolicy(jitter=0.5, seed=1).delay(i, salt=4) for i in range(length)
        ]
        assert base != other_seed
        assert base != other_salt

    def test_with_retries_records_jittered_schedule(self):
        registry = get_registry()
        histogram = registry.histogram("resilience.retry.delay_seconds")
        count_before = histogram.count
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientCollectiveError("flake")
            return "ok"

        policy = RetryPolicy(max_attempts=4, sleep_enabled=False, jitter=0.5, seed=9)
        assert with_retries(flaky, policy=policy, name="jittered-op") == "ok"
        # Two retries happened, so two sleeps were observed — even with
        # sleeping disabled the schedule itself is recorded.
        assert histogram.count == count_before + 2


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------


def _make_checkpoint(schema, step=7, seed=3):
    model = small_dlrm(schema, seed=seed)
    scheduler = ShuffleScheduler(num_hot_batches=4, num_cold_batches=6)
    return model, TrainerCheckpoint(
        step=step,
        epoch=1,
        cursors={"hot": 2, "cold": 3},
        scheduler_state=scheduler.state_dict(),
        params=capture_training_state(model.dense_parameters(), model.tables),
        rng_state={"collective_calls": 12},
        last_train_loss=0.5,
        metadata={"world_size": 2},
    )


class TestCheckpoint:
    def test_save_load_roundtrip(self, tmp_path, tiny_schema):
        _model, ckpt = _make_checkpoint(tiny_schema)
        path = save_checkpoint(tmp_path, ckpt)
        assert path.name == "ckpt-00000007.npz"
        assert verify_checkpoint(path)

        loaded = load_checkpoint(path)
        assert loaded.step == 7
        assert loaded.epoch == 1
        assert loaded.cursors == {"hot": 2, "cold": 3}
        assert loaded.scheduler_state["total_hot"] == 4
        assert loaded.rng_state == {"collective_calls": 12}
        assert loaded.metadata == {"world_size": 2}
        assert loaded.last_train_loss == pytest.approx(0.5)
        for key, value in ckpt.params.items():
            np.testing.assert_array_equal(loaded.params[key], value)

    def test_restore_overwrites_model(self, tmp_path, tiny_schema):
        model, ckpt = _make_checkpoint(tiny_schema, seed=3)
        path = save_checkpoint(tmp_path, ckpt)

        other = small_dlrm(tiny_schema, seed=99)
        loaded = load_checkpoint(path)
        restore_training_state(other.dense_parameters(), other.tables, loaded.params)
        for name in model.tables:
            np.testing.assert_array_equal(
                other.tables[name].weight.value, model.tables[name].weight.value
            )
        for p, q in zip(model.dense_parameters(), other.dense_parameters()):
            np.testing.assert_array_equal(q.value, p.value)

    def test_restore_rejects_wrong_model(self, tmp_path, tiny_schema):
        _model, ckpt = _make_checkpoint(tiny_schema)
        loaded = load_checkpoint(save_checkpoint(tmp_path, ckpt))
        other = DLRM(tiny_schema, DLRMConfig("4-16-8", "8-4-1", seed=0))
        with pytest.raises(CheckpointError):
            restore_training_state(other.dense_parameters(), other.tables, loaded.params)

    def test_bit_flip_detected_and_named(self, tmp_path, tiny_schema):
        _model, ckpt = _make_checkpoint(tiny_schema)
        path = save_checkpoint(tmp_path, ckpt)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))

        assert not verify_checkpoint(path)
        with pytest.raises(CheckpointCorruptionError) as excinfo:
            load_checkpoint(path)
        assert path.name in str(excinfo.value)

    def test_missing_sidecar_is_corrupt(self, tmp_path, tiny_schema):
        _model, ckpt = _make_checkpoint(tiny_schema)
        path = save_checkpoint(tmp_path, ckpt)
        path.with_name(path.name + ".sha256").unlink()
        with pytest.raises(CheckpointCorruptionError):
            load_checkpoint(path)

    def test_latest_skips_corrupt_entries(self, tmp_path, tiny_schema):
        _model, older = _make_checkpoint(tiny_schema, step=5)
        _model, newer = _make_checkpoint(tiny_schema, step=9)
        good = save_checkpoint(tmp_path, older)
        bad = save_checkpoint(tmp_path, newer)
        bad.write_bytes(bad.read_bytes()[: 100])

        skipped_before = counter_value("resilience.checkpoint.corrupt_skipped")
        assert latest_checkpoint(tmp_path) == good
        assert counter_value("resilience.checkpoint.corrupt_skipped") > skipped_before

    def test_latest_on_missing_or_empty_directory(self, tmp_path):
        assert latest_checkpoint(tmp_path / "nope") is None
        assert latest_checkpoint(tmp_path) is None

    def test_manager_cadence_and_retention(self, tmp_path, tiny_schema):
        manager = CheckpointManager(tmp_path, every=2, keep=2)
        assert not manager.should_save(0)
        assert not manager.should_save(1)
        assert manager.should_save(2)
        assert manager.should_save(4)

        for step in (2, 4, 6):
            _model, ckpt = _make_checkpoint(tiny_schema, step=step)
            manager.save(ckpt)
        names = sorted(p.name for p in tmp_path.glob("ckpt-*.npz"))
        assert names == ["ckpt-00000004.npz", "ckpt-00000006.npz"]
        # Pruned checkpoints take their sidecars with them.
        assert len(list(tmp_path.glob("*.sha256"))) == 2
        assert manager.latest() == tmp_path / "ckpt-00000006.npz"

    def test_manager_validates_args(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, every=0)
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, keep=0)

    def test_prune_keep_one_retains_only_newest(self, tmp_path, tiny_schema):
        manager = CheckpointManager(tmp_path, keep=1)
        for step in (1, 2, 3):
            _model, ckpt = _make_checkpoint(tiny_schema, step=step)
            manager.save(ckpt)
        assert [p.name for p in tmp_path.glob("ckpt-*.npz")] == ["ckpt-00000003.npz"]
        assert [p.name for p in tmp_path.glob("*.sha256")] == [
            "ckpt-00000003.npz.sha256"
        ]

    def test_prune_keep_larger_than_count_keeps_all(self, tmp_path, tiny_schema):
        manager = CheckpointManager(tmp_path, keep=10)
        for step in (1, 2, 3):
            _model, ckpt = _make_checkpoint(tiny_schema, step=step)
            manager.save(ckpt)
        assert len(list(tmp_path.glob("ckpt-*.npz"))) == 3
        assert len(list(tmp_path.glob("*.sha256"))) == 3

    def test_prune_keep_none_is_unlimited(self, tmp_path, tiny_schema):
        manager = CheckpointManager(tmp_path, keep=None)
        for step in range(1, 6):
            _model, ckpt = _make_checkpoint(tiny_schema, step=step)
            manager.save(ckpt)
        assert len(list(tmp_path.glob("ckpt-*.npz"))) == 5

    def test_manager_latest_falls_back_past_corrupt_newest(
        self, tmp_path, tiny_schema
    ):
        # The resume path must land on the newest *good* checkpoint even
        # when the newest file on disk is a truncated crash remnant.
        manager = CheckpointManager(tmp_path, keep=None)
        for step in (3, 6, 9):
            _model, ckpt = _make_checkpoint(tiny_schema, step=step)
            manager.save(ckpt)
        newest = tmp_path / "ckpt-00000009.npz"
        newest.write_bytes(newest.read_bytes()[:64])

        fallback = manager.latest()
        assert fallback == tmp_path / "ckpt-00000006.npz"
        assert load_checkpoint(fallback).step == 6


# ----------------------------------------------------------------------
# Optimizer state
# ----------------------------------------------------------------------


class TestOptimizerState:
    def test_sgd_is_stateless(self, tiny_schema):
        opt = SGD(small_dlrm(tiny_schema).dense_parameters(), lr=0.1)
        assert opt.state_dict() == {}
        opt.load_state_dict({})
        with pytest.raises(ValueError):
            opt.load_state_dict({"accum.0000": np.zeros(1)})

    def test_adagrad_roundtrip(self, tiny_schema):
        model = small_dlrm(tiny_schema, seed=3)
        opt = Adagrad(model.dense_parameters(), lr=0.1)
        for param in opt.parameters:
            param.grad = np.ones_like(param.value)
        opt.step()
        state = opt.state_dict()
        assert state  # accumulators are non-trivial after a step

        fresh = Adagrad(model.dense_parameters(), lr=0.1)
        fresh.load_state_dict(state)
        for key, value in fresh.state_dict().items():
            np.testing.assert_array_equal(value, state[key])

    def test_adagrad_rejects_mismatched_state(self, tiny_schema):
        model = small_dlrm(tiny_schema, seed=3)
        opt = Adagrad(model.dense_parameters(), lr=0.1)
        bad = {key: np.zeros((1, 1)) for key in opt.state_dict()}
        with pytest.raises(ValueError):
            opt.load_state_dict(bad)


# ----------------------------------------------------------------------
# Scheduler degradation + state
# ----------------------------------------------------------------------


class TestSchedulerResilience:
    def test_degraded_segments_run_cold_but_drain_hot_pool(self):
        scheduler = ShuffleScheduler(num_hot_batches=10, num_cold_batches=10)
        scheduler.degrade()
        events = list(scheduler.segments())
        assert all(event.kind == "cold" for event in events)
        assert {event.drain_pool for event in events} == {"hot", "cold"}
        assert sum(e.num_batches for e in events if e.drain_pool == "hot") == 10
        assert sum(e.num_batches for e in events if e.drain_pool == "cold") == 10

    def test_degrade_is_idempotent(self):
        before = counter_value("scheduler.degraded")
        scheduler = ShuffleScheduler(num_hot_batches=2, num_cold_batches=2)
        scheduler.degrade()
        scheduler.degrade()
        assert counter_value("scheduler.degraded") == before + 1

    def test_state_roundtrip_mid_epoch(self):
        scheduler = ShuffleScheduler(num_hot_batches=20, num_cold_batches=20)
        scheduler.next_segment()
        scheduler.record_test_loss(0.6)
        scheduler.next_segment()
        scheduler.record_test_loss(0.55)
        state = scheduler.state_dict()

        fresh = ShuffleScheduler(num_hot_batches=20, num_cold_batches=20)
        fresh.load_state_dict(state)
        assert fresh.state_dict() == state
        # Both plan the same continuation.
        a, b = scheduler.next_segment(), fresh.next_segment()
        assert (a.kind, a.num_batches, a.drain_pool) == (b.kind, b.num_batches, b.drain_pool)

    def test_state_rejects_other_dataset(self):
        scheduler = ShuffleScheduler(num_hot_batches=20, num_cold_batches=20)
        other = ShuffleScheduler(num_hot_batches=5, num_cold_batches=20)
        with pytest.raises(ValueError):
            other.load_state_dict(scheduler.state_dict())


# ----------------------------------------------------------------------
# Loader fault injection
# ----------------------------------------------------------------------


class TestLoaderFaults:
    def test_fetch_batch_retries_hiccups(self, tiny_log):
        plan = FaultPlan(seed=0, loader_hiccup_rate=0.9, max_loader_hiccups=2)
        retry = RetryPolicy(max_attempts=4, sleep_enabled=False)
        batch = fetch_batch(tiny_log, np.arange(32), fault_plan=plan, retry=retry)
        assert len(batch.labels) == 32

    def test_fetch_batch_exhaustion_surfaces(self, tiny_log):
        plan = FaultPlan(seed=1, loader_hiccup_rate=0.999999, max_loader_hiccups=64)
        retry = RetryPolicy(max_attempts=2, sleep_enabled=False)
        with pytest.raises(RetryExhaustedError):
            fetch_batch(tiny_log, np.arange(8), fault_plan=plan, retry=retry)

    def test_fetch_batch_without_plan_is_plain(self, tiny_log):
        batch = fetch_batch(tiny_log, np.arange(16))
        assert len(batch.labels) == 16


# ----------------------------------------------------------------------
# Packed-dataset corruption
# ----------------------------------------------------------------------


class TestPackedDatasetErrors:
    def test_truncated_archive_names_file(self, tmp_path, tiny_plan):
        path = tmp_path / "packed.npz"
        tiny_plan.save(path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(RuntimeError) as excinfo:
            load_fae_dataset(path)
        assert "packed.npz" in str(excinfo.value)

    def test_garbage_file_names_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(RuntimeError) as excinfo:
            load_fae_dataset(path)
        assert "junk.npz" in str(excinfo.value)

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, unrelated=np.arange(3))
        with pytest.raises(RuntimeError) as excinfo:
            load_fae_dataset(path)
        assert "format header" in str(excinfo.value)

    def test_missing_file_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_fae_dataset(tmp_path / "absent.npz")


# ----------------------------------------------------------------------
# Serving deadline fallback
# ----------------------------------------------------------------------


class TestServeDeadline:
    def _request(self, tiny_log):
        table = next(iter(tiny_log.sparse))
        context = {name: ids[0] for name, ids in tiny_log.sparse.items()}
        return tiny_log.dense[0], context, table

    def test_deadline_trips_to_fallback(self, tiny_schema, tiny_log):
        engine = InferenceEngine(small_dlrm(tiny_schema), batch_size=64)
        dense, context, table = self._request(tiny_log)
        exceeded_before = counter_value("serve.deadline.exceeded")
        result = engine.rank_candidates(
            dense, context, table, np.arange(100), top_k=5, deadline_s=1e-9
        )
        assert result.degraded
        assert len(result.item_ids) == 5
        assert np.all(np.diff(result.scores) <= 0)
        assert counter_value("serve.deadline.exceeded") > exceeded_before

    def test_no_deadline_full_fidelity(self, tiny_schema, tiny_log):
        engine = InferenceEngine(small_dlrm(tiny_schema), batch_size=64)
        dense, context, table = self._request(tiny_log)
        result = engine.rank_candidates(dense, context, table, np.arange(100), top_k=5)
        assert not result.degraded

    def test_generous_deadline_not_degraded(self, tiny_schema, tiny_log):
        engine = InferenceEngine(small_dlrm(tiny_schema), batch_size=64, deadline_s=30.0)
        dense, context, table = self._request(tiny_log)
        result = engine.rank_candidates(dense, context, table, np.arange(64), top_k=3)
        assert not result.degraded

    def test_invalid_deadline_rejected(self, tiny_schema):
        with pytest.raises(ValueError):
            InferenceEngine(small_dlrm(tiny_schema), deadline_s=0.0)


# ----------------------------------------------------------------------
# Trainer recovery: crash/resume, degradation, chaos
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def fae_setup(request):
    tiny_log = request.getfixturevalue("tiny_log")
    config = request.getfixturevalue("tiny_fae_config")
    train, test = train_test_split(tiny_log, 0.2, seed=4)
    # drop_last keeps every batch at exactly 64 samples, so multi-replica
    # sharding is exact (mirrors tests/test_dist.py).
    plan = fae_preprocess(train, config, batch_size=64, drop_last=True)
    return tiny_log.schema, train, test, plan


class TestCrashResume:
    def test_resumed_run_reproduces_loss_trajectory(self, tmp_path, fae_setup):
        schema, train, test, plan = fae_setup

        full_model = small_dlrm(schema, seed=21)
        manager = CheckpointManager(tmp_path, every=1, keep=None)
        full = FAETrainer(full_model, plan, lr=0.15).train(
            train, test, epochs=1, checkpoint=manager
        )
        checkpoints = sorted(tmp_path.glob("ckpt-*.npz"))
        assert len(checkpoints) >= 2

        # "Crash" after an intermediate segment: resume a *differently
        # initialized* model from that checkpoint; the restore overwrites
        # every parameter, so the tail of the run must match exactly.
        resumed_model = small_dlrm(schema, seed=777)
        resumed = FAETrainer(resumed_model, plan, lr=0.15).train(
            train, test, epochs=1, resume=checkpoints[len(checkpoints) // 2]
        )

        full_points = full.history.points
        resumed_points = resumed.history.points
        tail = full_points[len(full_points) - len(resumed_points) :]
        assert len(tail) == len(resumed_points)
        for expected, got in zip(tail, resumed_points):
            assert got.iteration == expected.iteration
            assert got.test_loss == pytest.approx(expected.test_loss, abs=1e-12)
            assert got.train_loss == pytest.approx(expected.train_loss, abs=1e-12)
        assert resumed.final_test_accuracy == pytest.approx(full.final_test_accuracy)

        for name in full_model.tables:
            np.testing.assert_array_equal(
                resumed_model.tables[name].weight.value,
                full_model.tables[name].weight.value,
            )
        for p, q in zip(full_model.dense_parameters(), resumed_model.dense_parameters()):
            np.testing.assert_array_equal(q.value, p.value)

    def test_resume_from_manager_latest(self, tmp_path, fae_setup):
        schema, train, test, plan = fae_setup
        manager = CheckpointManager(tmp_path, every=2, keep=3)
        FAETrainer(small_dlrm(schema, seed=5), plan, lr=0.15).train(
            train, test, epochs=1, checkpoint=manager
        )
        latest = manager.latest()
        assert latest is not None
        restores_before = counter_value("resilience.checkpoint.restores")
        result = FAETrainer(small_dlrm(schema, seed=6), plan, lr=0.15).train(
            train, test, epochs=1, resume=latest
        )
        assert counter_value("resilience.checkpoint.restores") == restores_before + 1
        assert np.isfinite(result.final_test_accuracy)

    def test_resume_rejects_other_dataset_checkpoint(self, tmp_path, fae_setup, tiny_schema):
        schema, train, test, plan = fae_setup
        _model, foreign = _make_checkpoint(tiny_schema)
        path = save_checkpoint(tmp_path, foreign)
        # Parameters may coincidentally match (same schema), but the
        # scheduler pool sizes cannot: either rejection is acceptable.
        with pytest.raises((CheckpointError, ValueError)):
            FAETrainer(small_dlrm(schema, seed=5), plan, lr=0.15).train(
                train, test, epochs=1, resume=path
            )


class TestDegradation:
    def test_eviction_degrades_single_device_run(self, fae_setup):
        schema, train, test, plan = fae_setup
        plan_faults = FaultPlan(seed=3, hot_eviction_at=5)
        trainer = FAETrainer(
            small_dlrm(schema, seed=13), plan, lr=0.15, fault_plan=plan_faults
        )
        evictions_before = counter_value("fae.hot.evictions")
        result = trainer.train(train, test, epochs=1)
        assert result.degraded
        assert trainer.replicator.evicted
        assert trainer.replicator.num_replicas == 0
        assert counter_value("fae.hot.evictions") == evictions_before + 1
        # The whole dataset still trained (hot pool drained on the cold path).
        assert result.history.final.iteration == len(plan.dataset.hot_batches) + len(
            plan.dataset.cold_batches
        )
        assert np.isfinite(result.final_test_accuracy)

    def test_degraded_checkpoint_resumes_degraded(self, tmp_path, fae_setup):
        schema, train, test, plan = fae_setup
        manager = CheckpointManager(tmp_path, every=1, keep=None)
        FAETrainer(
            small_dlrm(schema, seed=13),
            plan,
            lr=0.15,
            fault_plan=FaultPlan(seed=3, hot_eviction_at=1),
        ).train(train, test, epochs=1, checkpoint=manager)

        ckpt = load_checkpoint(manager.latest())
        assert ckpt.degraded
        trainer = FAETrainer(small_dlrm(schema, seed=14), plan, lr=0.15)
        result = trainer.train(train, test, epochs=1, resume=ckpt)
        assert result.degraded
        assert trainer.replicator.evicted


class TestDistributedChaos:
    def test_seeded_chaos_run_survives(self, fae_setup):
        schema, train, test, plan = fae_setup
        fault_plan = FaultPlan(
            seed=7,
            collective_failure_rate=0.05,
            rank_death=(1, 10),
            hot_eviction_at=20,
            loader_hiccup_rate=0.02,
        )
        retry = RetryPolicy(max_attempts=6, sleep_enabled=False)
        replicas = [small_dlrm(schema, seed=7) for _ in range(3)]
        trainer = DistributedFAETrainer(
            replicas, plan, lr=0.15, fault_plan=fault_plan, retry=retry
        )

        registry = get_registry()
        attempts_before = counter_value("resilience.retry.attempts")
        deaths_before = counter_value("faults.rank_death.injected")
        result = trainer.train(train, test, epochs=1)

        assert result.world_shrinks == 1
        assert trainer.world_size == 2
        assert len(trainer.replicas) == 2
        assert result.degraded
        assert counter_value("faults.rank_death.injected") == deaths_before + 1
        assert counter_value("resilience.retry.attempts") > attempts_before
        assert registry.gauge("dist.world_size").value == 2
        assert np.isfinite(result.final_test_accuracy)

    def test_rank_death_with_world_of_one_is_fatal(self, fae_setup):
        schema, train, test, plan = fae_setup
        fault_plan = FaultPlan(seed=7, rank_death=(0, 3))
        trainer = DistributedFAETrainer(
            [small_dlrm(schema, seed=7)],
            plan,
            lr=0.15,
            fault_plan=fault_plan,
            retry=RetryPolicy(sleep_enabled=False),
        )
        with pytest.raises(PermanentRankFailure):
            trainer.train(train, test, epochs=1)

    def test_chaos_checkpoint_resume_completes(self, tmp_path, fae_setup):
        schema, train, test, plan = fae_setup
        manager = CheckpointManager(tmp_path, every=1, keep=3)
        DistributedFAETrainer(
            [small_dlrm(schema, seed=8) for _ in range(2)],
            plan,
            lr=0.15,
            fault_plan=FaultPlan(seed=11, collective_failure_rate=0.05),
            retry=RetryPolicy(max_attempts=6, sleep_enabled=False),
        ).train(train, test, epochs=1, checkpoint=manager)

        latest = manager.latest()
        assert latest is not None
        result = DistributedFAETrainer(
            [small_dlrm(schema, seed=9) for _ in range(2)],
            plan,
            lr=0.15,
            fault_plan=FaultPlan(seed=11, collective_failure_rate=0.05),
            retry=RetryPolicy(max_attempts=6, sleep_enabled=False),
        ).train(train, test, epochs=1, resume=latest)
        assert np.isfinite(result.final_test_accuracy)
