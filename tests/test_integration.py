"""Integration tests: the full FAE pipeline end to end."""

import numpy as np
import pytest

from repro.core import FAEConfig, fae_preprocess, load_fae_dataset
from repro.data import (
    SyntheticClickLog,
    SyntheticConfig,
    taobao_like,
    train_test_split,
)
from repro.hw import Cluster, TrainingSimulator
from repro.hw.workload import characterize_from_plan
from repro.models import build_model, workload_by_name
from repro.train import FAETrainer


class TestEndToEndDLRM:
    def test_preprocess_train_simulate(self, tiny_log, tiny_fae_config, tiny_schema):
        train, test = train_test_split(tiny_log, 0.2, seed=7)
        plan = fae_preprocess(train, tiny_fae_config, batch_size=64)

        from repro.models.dlrm import DLRM, DLRMConfig

        model = DLRM(tiny_schema, DLRMConfig("4-8", "8-1", seed=1))
        result = FAETrainer(model, plan, lr=0.2).train(train, test, epochs=2)

        majority = max(test.base_rate(), 1 - test.base_rate())
        assert result.final_test_accuracy > majority - 0.02
        assert result.sync_events >= 2

    def test_saved_plan_retrains_identically(self, tiny_log, tiny_fae_config, tmp_path):
        train, test = train_test_split(tiny_log, 0.2, seed=7)
        plan = fae_preprocess(train, tiny_fae_config, batch_size=64)
        path = tmp_path / "plan.npz"
        plan.save(path)
        dataset, bags, threshold = load_fae_dataset(path)
        assert threshold == plan.threshold
        total_loaded = sum(len(b) for b in dataset.hot_batches + dataset.cold_batches)
        assert total_loaded == len(train)


class TestEndToEndTBSM:
    def test_tbsm_fae_training(self):
        schema = taobao_like("tiny")
        log = SyntheticClickLog(schema, SyntheticConfig(num_samples=2500, seed=9))
        train, test = train_test_split(log, 0.2, seed=0)
        config = FAEConfig(
            gpu_memory_budget=48 * 1024,
            large_table_min_bytes=512,
            chunk_size=16,
            seed=0,
        )
        plan = fae_preprocess(train, config, batch_size=64)
        assert 0 < plan.hot_input_fraction < 1

        model = build_model(workload_by_name("RMC1"), schema=schema, seed=2)
        result = FAETrainer(model, plan, lr=0.1).train(train, test, epochs=1)
        assert np.isfinite(result.history.final.test_loss)
        kinds = {p.segment_kind for p in result.history.points}
        assert "hot" in kinds


class TestReorderingEquivalence:
    """FAE == baseline up to mini-batch order: same data, same updates."""

    def test_single_hot_segment_equals_sequential_sgd(self, tiny_log, tiny_fae_config, tiny_schema):
        from repro.data.loader import batch_from_log
        from repro.models.dlrm import DLRM, DLRMConfig
        from repro.nn import BCEWithLogits, SGD

        train, test = train_test_split(tiny_log, 0.2, seed=3)
        plan = fae_preprocess(train, tiny_fae_config, batch_size=32)

        # Manual sequential SGD over the exact FAE batch order:
        # interleave per the scheduler with a fixed rate of 100
        # (one cold block then one hot block).
        manual = DLRM(tiny_schema, DLRMConfig("4-8", "8-1", seed=11))
        loss_fn = BCEWithLogits()
        opt = SGD(manual.parameters(), lr=0.1)
        for pool in (plan.dataset.cold_batches, plan.dataset.hot_batches):
            for idx in pool:
                logits = manual.forward(batch_from_log(train, idx))
                loss_fn.forward(logits, train.labels[idx])
                manual.backward(loss_fn.backward())
                opt.step()

        # FAE trainer with a rate-100 schedule performs the same order
        # through the replica machinery.
        from dataclasses import replace

        config100 = replace(tiny_fae_config, scheduler_initial_rate=100)
        plan100 = fae_preprocess(train, config100, batch_size=32)
        fae_model = DLRM(tiny_schema, DLRMConfig("4-8", "8-1", seed=11))
        FAETrainer(fae_model, plan100, lr=0.1).train(train, test, epochs=1)

        for name in manual.tables:
            np.testing.assert_allclose(
                fae_model.tables[name].weight.value,
                manual.tables[name].weight.value,
                rtol=1e-4,
                atol=1e-5,
            )


class TestSimulatorFromPlan:
    def test_characterize_from_measured_plan(self):
        from repro.data import criteo_kaggle_like

        schema = criteo_kaggle_like("tiny")
        log = SyntheticClickLog(schema, SyntheticConfig(num_samples=3000, seed=1))
        config = FAEConfig(
            gpu_memory_budget=64 * 1024, large_table_min_bytes=256, chunk_size=16
        )
        plan = fae_preprocess(log, config, batch_size=64)
        spec = workload_by_name("RMC2")
        workload = characterize_from_plan(spec, plan, schema)
        assert workload.hot_fraction == pytest.approx(plan.hot_input_fraction)
        sim = TrainingSimulator(Cluster(num_gpus=1), workload)
        assert sim.speedup() > 1.0


class TestPublicAPI:
    def test_quickstart_surface(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"
