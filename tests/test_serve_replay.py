"""Tests for the Zipf traffic-replay SLO harness (repro.serve.replay)."""

import json

import pytest

from repro.serve import ReplayConfig, VirtualClock, format_slo_report, run_slo_replay
from repro.serve.replay import SLO_SCHEMA_VERSION


def _quick(**overrides):
    defaults = dict(requests=64, candidates=64, scale="tiny", seed=11)
    defaults.update(overrides)
    return ReplayConfig(**defaults)


class TestVirtualClock:
    def test_reads_advance_by_step(self):
        clock = VirtualClock()
        clock.step = 0.5
        assert clock() == 0.0
        assert clock() == 0.5
        assert clock() == 1.0

    def test_advance_jumps(self):
        clock = VirtualClock(start=10.0)
        clock.advance(2.5)
        assert clock() == 12.5

    def test_elapsed_is_deterministic_function_of_reads(self):
        clock = VirtualClock()
        clock.step = 0.1
        for _ in range(5):
            clock()
        assert clock.t == pytest.approx(0.5)


class TestReplayConfig:
    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            ReplayConfig(mode="cpu")

    def test_rejects_non_positive_requests(self):
        with pytest.raises(ValueError):
            ReplayConfig(requests=0)

    def test_burst_and_slow_windows(self):
        config = ReplayConfig(
            burst_every=10, burst_length=3, slow_start=5, slow_stop=8
        )
        assert config.in_burst(0) and config.in_burst(2) and not config.in_burst(3)
        assert config.in_burst(10)
        assert not config.in_slow_window(4)
        assert config.in_slow_window(5) and config.in_slow_window(7)
        assert not config.in_slow_window(8)


class TestDeterminism:
    def test_same_seed_is_byte_identical(self):
        config = _quick()
        first = json.dumps(run_slo_replay(config), sort_keys=True)
        second = json.dumps(run_slo_replay(config), sort_keys=True)
        assert first == second

    def test_different_seed_differs(self):
        a = run_slo_replay(_quick(seed=11))
        b = run_slo_replay(_quick(seed=12))
        assert a["latency_s"] != b["latency_s"]


class TestReport:
    def test_report_shape_and_accounting(self):
        report = run_slo_replay(_quick())
        assert report["schema_version"] == SLO_SCHEMA_VERSION
        assert report["kind"] == "slo_report"
        assert report["mode"] == "simulated"
        requests = report["requests"]
        assert requests["total"] == 64
        assert requests["completed"] + requests["shed"] == requests["total"]
        assert report["rates"]["error"] == 0.0
        lat = report["latency_s"]
        assert lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
        assert report["throughput_rps"] > 0
        json.dumps(report)  # JSON-ready as-is

    def test_format_report_smoke(self):
        text = format_slo_report(run_slo_replay(_quick()))
        assert "slo report" in text
        assert "p95" in text
        assert "breaker" in text

    def test_breaker_disabled_when_window_zero(self):
        report = run_slo_replay(_quick(breaker_window=0))
        assert report["breaker"] is None
        assert report["requests"]["shed"] == 0


class TestSlowReplicaFault:
    def test_slow_window_trips_breaker_and_sheds(self):
        # A 100x service-cost window blows the 25 ms deadline on every
        # request inside it; the breaker sees the failure run, opens,
        # and sheds — visible in the report as a nonzero shed rate.
        # Candidate count must span several scoring chunks so the
        # deadline check fires after cost has actually accrued.
        report = run_slo_replay(
            _quick(
                requests=200,
                candidates=512,
                slow_start=40,
                slow_stop=160,
                slow_factor=100.0,
            )
        )
        assert report["deadline_exceeded"] > 0
        assert report["requests"]["degraded"] > 0
        assert report["breaker"]["trips"] >= 1
        assert report["rates"]["shed"] > 0
        assert report["requests"]["shed"] == report["breaker"]["shed_requests"]

    def test_healthy_run_sheds_nothing(self):
        report = run_slo_replay(_quick(requests=128))
        assert report["breaker"]["trips"] == 0
        assert report["rates"]["shed"] == 0.0


class TestWallMode:
    def test_wall_mode_smoke(self):
        report = run_slo_replay(_quick(requests=16, mode="wall", deadline_s=None))
        assert report["mode"] == "wall"
        assert report["requests"]["completed"] == 16
        assert report["elapsed_s"] > 0
