"""Unit tests for the observability subsystem (repro.obs)."""

import json
import threading

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    export_jsonl,
    export_run,
    get_registry,
    get_tracer,
    load_jsonl,
    metric_records,
    span,
    summary_tree,
    timed,
    tracing,
    tracing_enabled,
)


@pytest.fixture
def clean_telemetry():
    """Enable tracing on a clean global tracer/registry; restore after."""
    tracer = get_tracer()
    registry = get_registry()
    previous = tracer.enabled
    tracer.reset()
    registry.clear()
    tracer.enabled = True
    yield tracer, registry
    tracer.enabled = previous
    tracer.reset()
    registry.clear()


class TestSpans:
    def test_records_wall_time(self, clean_telemetry):
        tracer, _ = clean_telemetry
        with span("work"):
            pass
        (record,) = tracer.records()
        assert record.name == "work"
        assert record.duration >= 0.0
        assert record.parent_id is None
        assert record.depth == 0

    def test_nesting_parent_child(self, clean_telemetry):
        tracer, _ = clean_telemetry
        with span("outer"):
            with span("inner"):
                pass
        inner, outer = tracer.records()  # inner exits (and records) first
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert inner.depth == 1
        assert outer.parent_id is None

    def test_sibling_spans_share_parent(self, clean_telemetry):
        tracer, _ = clean_telemetry
        with span("root"):
            with span("a"):
                pass
            with span("b"):
                pass
        a, b, root = tracer.records()
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_attributes_at_open_and_via_set(self, clean_telemetry):
        tracer, _ = clean_telemetry
        with span("work", rows=10) as sp:
            sp.set(bytes=2048)
        (record,) = tracer.records()
        assert record.attributes == {"rows": 10, "bytes": 2048}

    def test_exception_safety(self, clean_telemetry):
        tracer, _ = clean_telemetry
        with pytest.raises(RuntimeError):
            with span("outer"):
                with span("inner"):
                    raise RuntimeError("boom")
        inner, outer = tracer.records()
        assert "boom" in inner.attributes["error"]
        assert "boom" in outer.attributes["error"]
        # The stack unwound fully: a fresh span is a root again.
        with span("after"):
            pass
        assert tracer.records()[-1].parent_id is None

    def test_disabled_records_nothing(self, clean_telemetry):
        tracer, _ = clean_telemetry
        tracer.enabled = False
        with span("invisible") as sp:
            sp.set(rows=1)
        assert len(tracer.records()) == 0

    def test_disabled_span_is_shared_noop(self, clean_telemetry):
        tracer, _ = clean_telemetry
        tracer.enabled = False
        assert span("a") is span("b")

    def test_tracing_context_manager_restores_state(self):
        tracer = get_tracer()
        before = tracer.enabled
        with tracing(enabled=True):
            assert tracing_enabled()
        assert tracer.enabled == before

    def test_thread_safety_of_tracer(self, clean_telemetry):
        tracer, _ = clean_telemetry
        errors = []

        def worker(tag):
            try:
                for _ in range(50):
                    with span(f"thread.{tag}"):
                        with span(f"thread.{tag}.inner"):
                            pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        records = tracer.records()
        assert len(records) == 4 * 50 * 2
        # Every inner span's parent must be a same-thread outer span.
        by_id = {r.span_id: r for r in records}
        for record in records:
            if record.name.endswith(".inner"):
                parent = by_id[record.parent_id]
                assert parent.name == record.name[: -len(".inner")]


class TestTimed:
    def test_measures_even_when_disabled(self, clean_telemetry):
        tracer, _ = clean_telemetry
        tracer.enabled = False
        with timed("work") as timer:
            pass
        assert timer.seconds >= 0.0
        assert len(tracer.records()) == 0

    def test_records_span_when_enabled(self, clean_telemetry):
        tracer, _ = clean_telemetry
        with timed("work", rows=3) as timer:
            timer.set(extra=1)
        (record,) = tracer.records()
        assert record.name == "work"
        assert record.attributes == {"rows": 3, "extra": 1}
        assert timer.seconds == pytest.approx(record.duration, abs=1e-3)


class TestMetrics:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        assert counter.increments == 2

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_set_and_add(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7

    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_histogram_percentiles(self):
        hist = MetricsRegistry().histogram("h")
        for v in range(1, 101):  # 1..100
            hist.observe(float(v))
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 100.0
        assert hist.percentile(50) == pytest.approx(50.5)
        assert hist.percentile(90) == pytest.approx(90.1)
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert summary["mean"] == pytest.approx(50.5)

    def test_histogram_empty_percentile_raises(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h").percentile(50)

    def test_histogram_empty_p0_p100_also_raise(self):
        hist = MetricsRegistry().histogram("h")
        with pytest.raises(ValueError):
            hist.percentile(0)
        with pytest.raises(ValueError):
            hist.percentile(100)

    def test_histogram_out_of_range_percentile_raises(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.percentile(-1)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_histogram_single_sample_every_percentile(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(3.5)
        for p in (0, 1, 50, 99, 100):
            assert hist.percentile(p) == 3.5

    def test_histogram_bounded_retention(self):
        hist = MetricsRegistry().histogram("h", max_samples=8)
        for v in range(100):
            hist.observe(float(v))
        assert hist.count == 100
        assert hist.summary()["max"] == 99.0
        assert len(hist._samples) == 8

    def test_histogram_extremes_exact_past_retention_cap(self):
        # The ring buffer keeps a trailing window, but p=0/p=100 track
        # the exact stream min/max independently of the buffer.
        hist = MetricsRegistry().histogram("h", max_samples=4)
        hist.observe(-100.0)
        for v in range(1000):
            hist.observe(float(v))
        hist.observe(9999.0)
        assert hist.percentile(0) == -100.0
        assert hist.percentile(100) == 9999.0
        # Interior percentiles reflect the trailing window (documented
        # ring-buffer bias): the evicted early outlier no longer skews p50.
        assert hist.percentile(50) > 0.0

    def test_histogram_summary_includes_p95(self):
        hist = MetricsRegistry().histogram("h")
        for v in range(1, 101):
            hist.observe(float(v))
        assert hist.summary()["p95"] == pytest.approx(95.05)

    def test_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(5)
        registry.gauge("b").set(2)
        registry.histogram("c").observe(1.0)
        snap = registry.snapshot()
        assert snap["a"]["value"] == 5
        assert snap["b"]["value"] == 2
        assert snap["c"]["count"] == 1
        registry.reset()
        snap = registry.snapshot()
        assert snap["a"]["value"] == 0
        assert snap["c"]["count"] == 0
        assert registry.names() == ["a", "b", "c"]

    def test_thread_safety_of_registry(self):
        registry = MetricsRegistry()

        def worker():
            for _ in range(1000):
                registry.counter("hits").inc()
                registry.histogram("lat").observe(0.001)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("hits").value == 8000
        assert registry.histogram("lat").count == 8000


class TestExport:
    def test_jsonl_round_trip(self, clean_telemetry, tmp_path):
        tracer, registry = clean_telemetry
        with span("outer", rows=7):
            with span("inner"):
                pass
        registry.counter("events").inc(3)
        registry.histogram("lat").observe(0.25)

        path = export_jsonl(tmp_path / "run.jsonl")
        records = load_jsonl(path)
        spans = [r for r in records if r["type"] == "span"]
        metrics = [r for r in records if r["type"] == "metric"]
        assert {s["name"] for s in spans} == {"outer", "inner"}
        assert len(spans) == 2
        outer = next(s for s in spans if s["name"] == "outer")
        inner = next(s for s in spans if s["name"] == "inner")
        assert inner["parent_id"] == outer["span_id"]
        assert outer["attributes"] == {"rows": 7}
        by_name = {m["name"]: m for m in metrics}
        assert by_name["events"]["value"] == 3
        assert by_name["lat"]["count"] == 1
        # Each line is standalone JSON.
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_metric_records_one_per_instrument(self, clean_telemetry):
        _, registry = clean_telemetry
        registry.counter("a").inc()
        registry.gauge("b").set(1)
        assert len(metric_records(registry)) == 2

    def test_summary_tree_structure(self, clean_telemetry):
        tracer, registry = clean_telemetry
        with span("calibrate"):
            with span("calibrate.sample"):
                pass
            with span("calibrate.sample"):
                pass
        registry.counter("fae.sync.events").inc(2)
        text = summary_tree()
        assert "calibrate" in text
        assert "calibrate.sample" in text
        assert "count     2" in text
        assert "fae.sync.events: 2" in text

    def test_summary_tree_empty(self, clean_telemetry):
        text = summary_tree(Tracer(), MetricsRegistry())
        assert "no spans" in text

    def test_summary_tree_has_self_column(self, clean_telemetry):
        with span("work"):
            with span("inner"):
                pass
        text = summary_tree()
        assert "self%" in text.split("\n")[0]

    def test_summary_tree_siblings_sorted_by_total_then_name(self, clean_telemetry):
        import time as _time

        with span("root"):
            with span("b_heavy"):
                _time.sleep(0.02)
            with span("a_light"):
                pass
            with span("z_light"):
                pass
        lines = summary_tree().split("\n")
        # Heaviest first; equal-weight siblings tie-break on name, so
        # a_light precedes z_light and the order is deterministic.
        b = next(i for i, l in enumerate(lines) if l.strip().startswith("b_heavy"))
        a = next(i for i, l in enumerate(lines) if l.strip().startswith("a_light"))
        z = next(i for i, l in enumerate(lines) if l.strip().startswith("z_light"))
        assert b < a < z

    def test_export_run_artifacts(self, clean_telemetry, tmp_path):
        tracer, registry = clean_telemetry
        with span("work"):
            pass
        registry.counter("n").inc()
        paths = export_run(tmp_path / "run0")
        assert paths["trace"].exists()
        assert paths["metrics"].exists()
        assert paths["summary"].exists()
        assert load_jsonl(paths["trace"])[0]["name"] == "work"
        assert load_jsonl(paths["metrics"])[0]["name"] == "n"
        assert "work" in paths["summary"].read_text()


class TestOverhead:
    def test_disabled_span_allocates_nothing(self, clean_telemetry):
        tracer, _ = clean_telemetry
        tracer.enabled = False
        noop = span("hot.path")
        for _ in range(1000):
            assert span("hot.path") is noop
        assert len(tracer.records()) == 0
