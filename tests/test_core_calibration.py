"""Unit tests for the FAE calibration pipeline: sampler, logger, Rand-Em
Box, statistical optimizer, and the Calibrator facade."""

import numpy as np
import pytest

from repro.core import (
    Calibrator,
    EmbeddingLogger,
    FAEConfig,
    RandEmBox,
    SparseInputSampler,
    StatisticalOptimizer,
)
from repro.core.access_profile import AccessProfile, TableProfile


class TestSparseInputSampler:
    def test_sample_rate_respected(self, tiny_log):
        result = SparseInputSampler(0.1, seed=0).sample(tiny_log)
        assert result.num_sampled == round(0.1 * len(tiny_log))
        assert result.rate == pytest.approx(0.1, rel=0.02)

    def test_indices_sorted_unique_in_range(self, tiny_log):
        result = SparseInputSampler(0.25, seed=1).sample(tiny_log)
        idx = result.indices
        assert np.all(np.diff(idx) > 0)
        assert idx.min() >= 0 and idx.max() < len(tiny_log)

    def test_deterministic(self, tiny_log):
        a = SparseInputSampler(0.1, seed=7).sample(tiny_log).indices
        b = SparseInputSampler(0.1, seed=7).sample(tiny_log).indices
        np.testing.assert_array_equal(a, b)

    def test_sample_all(self, tiny_log):
        result = SparseInputSampler(0.1).sample_all(tiny_log)
        assert result.num_sampled == len(tiny_log)

    def test_at_least_one_sample(self, tiny_log):
        result = SparseInputSampler(1e-9, seed=0).sample(tiny_log)
        assert result.num_sampled >= 1

    @pytest.mark.parametrize("rate", [0.0, 1.5, -0.1])
    def test_rejects_bad_rate(self, rate):
        with pytest.raises(ValueError):
            SparseInputSampler(rate)


class TestEmbeddingLogger:
    def test_profiles_only_large_tables(self, tiny_log, tiny_fae_config):
        logger = EmbeddingLogger(tiny_fae_config)
        profile = logger.profile(tiny_log, np.arange(len(tiny_log)))
        # table_02 (12 rows x 8 dim x 4B = 384B) is under the 1 KiB cutoff.
        assert set(profile.tables) == {"table_00", "table_01"}

    def test_counts_match_ground_truth(self, tiny_log, tiny_fae_config):
        logger = EmbeddingLogger(tiny_fae_config)
        profile = logger.profile(tiny_log, np.arange(len(tiny_log)))
        np.testing.assert_array_equal(
            profile.tables["table_00"].counts, tiny_log.access_counts("table_00")
        )

    def test_sampled_counts_subset(self, tiny_log, tiny_fae_config):
        indices = np.arange(100)
        profile = EmbeddingLogger(tiny_fae_config).profile(tiny_log, indices)
        assert profile.tables["table_00"].counts.sum() == 100
        assert profile.num_sampled_inputs == 100

    def test_empty_sample_rejected(self, tiny_log, tiny_fae_config):
        with pytest.raises(ValueError):
            EmbeddingLogger(tiny_fae_config).profile(tiny_log, np.array([], dtype=np.int64))

    def test_sampled_profile_tracks_full_profile(self, tiny_log, tiny_fae_config):
        """Fig 7's claim: a random sample reproduces the access signature."""
        logger = EmbeddingLogger(tiny_fae_config)
        full = logger.profile(tiny_log, np.arange(len(tiny_log)))
        sample_idx = SparseInputSampler(0.3, seed=5).sample(tiny_log).indices
        sampled = logger.profile(tiny_log, sample_idx)
        full_ranks = full.tables["table_00"].rank_frequency(50).astype(float)
        sampled_ranks = sampled.tables["table_00"].rank_frequency(50).astype(float)
        # Normalized rank-frequency curves should correlate strongly.
        full_ranks /= full_ranks.sum()
        sampled_ranks /= sampled_ranks.sum()
        corr = np.corrcoef(full_ranks, sampled_ranks)[0, 1]
        assert corr > 0.98


class TestTableProfile:
    def test_skew_statistics(self, tiny_log, tiny_fae_config):
        profile = EmbeddingLogger(tiny_fae_config).profile(
            tiny_log, np.arange(len(tiny_log))
        )
        table = profile.tables["table_00"]
        assert table.top_fraction_share(1.0) == pytest.approx(1.0)
        assert table.top_fraction_share(0.1) > 0.1  # skewed beyond uniform
        assert 0 < table.hot_access_share(2) <= 1

    def test_hot_mask_consistency(self):
        profile = TableProfile("t", np.array([5, 0, 3, 1]), dim=4)
        mask = profile.hot_mask(2)
        np.testing.assert_array_equal(mask, [True, False, True, False])
        assert profile.hot_row_count(2) == 2
        assert profile.hot_bytes(2) == 2 * 16

    def test_zero_access_edge(self):
        profile = TableProfile("t", np.zeros(4, dtype=np.int64), dim=2)
        assert profile.hot_access_share(1) == 0.0
        assert profile.top_fraction_share(0.5) == 0.0


class TestAccessProfile:
    def test_min_count_uses_multiplicity(self, tiny_log, tiny_fae_config):
        profile = EmbeddingLogger(tiny_fae_config).profile(tiny_log, np.arange(100))
        base = profile.min_count_for_threshold(0.01, "table_00")
        assert base == pytest.approx(0.01 * 100 * 1)

    def test_hot_bytes_monotone_in_threshold(self, tiny_log, tiny_fae_config):
        profile = EmbeddingLogger(tiny_fae_config).profile(
            tiny_log, np.arange(len(tiny_log))
        )
        sizes = [profile.hot_bytes_for_threshold(t) for t in (1e-1, 1e-2, 1e-3, 1e-4)]
        assert sizes == sorted(sizes)

    def test_small_tables_always_counted(self, tiny_log, tiny_fae_config, tiny_schema):
        profile = EmbeddingLogger(tiny_fae_config).profile(
            tiny_log, np.arange(len(tiny_log))
        )
        small_bytes = tiny_schema.table("table_02").size_bytes
        huge_threshold = profile.hot_bytes_for_threshold(1.0)
        assert huge_threshold >= small_bytes

    def test_validation(self, tiny_schema):
        with pytest.raises(ValueError):
            AccessProfile(tiny_schema, {}, num_sampled_inputs=0, num_total_inputs=10)
        with pytest.raises(ValueError):
            AccessProfile(tiny_schema, {}, num_sampled_inputs=20, num_total_inputs=10)


class TestRandEmBox:
    def test_small_table_exact(self, tiny_log, tiny_fae_config):
        profile = EmbeddingLogger(tiny_fae_config).profile(
            tiny_log, np.arange(len(tiny_log))
        )
        table = profile.tables["table_00"]
        box = RandEmBox(tiny_fae_config)
        estimate = box.estimate(table, min_count=3)
        # 600 rows <= 35 * 32 chunks -> exact path
        assert estimate.exact
        assert estimate.hot_rows_mean == table.hot_row_count(3)
        assert estimate.hot_rows_upper == estimate.hot_rows_lower

    def test_large_table_sampled_estimate_close(self):
        """Fig 9's claim: estimates within ~10% of ground truth."""
        rng = np.random.default_rng(0)
        counts = rng.zipf(1.5, size=400_000).astype(np.int64)
        profile = TableProfile("big", counts, dim=4)
        config = FAEConfig(chunk_size=1024, num_chunks=35)
        box = RandEmBox(config, seed=12)
        for min_count in (2, 5, 20):
            estimate = box.estimate(profile, min_count)
            truth = profile.hot_row_count(min_count)
            assert not estimate.exact
            assert estimate.hot_rows_mean == pytest.approx(truth, rel=0.15)
            assert estimate.rows_scanned == 35 * 1024

    def test_confidence_interval_brackets_truth_usually(self):
        rng = np.random.default_rng(3)
        counts = rng.zipf(1.4, size=300_000).astype(np.int64)
        profile = TableProfile("big", counts, dim=4)
        config = FAEConfig(chunk_size=1024, num_chunks=35)
        truth = profile.hot_row_count(4)
        hits = 0
        trials = 20
        for seed in range(trials):
            est = RandEmBox(config, seed=seed).estimate(profile, 4)
            if est.hot_rows_lower <= truth <= est.hot_rows_upper:
                hits += 1
        # 99.9% CI: essentially always brackets the truth.
        assert hits >= trials - 1

    def test_scan_reduction(self):
        profile = TableProfile("big", np.zeros(1_000_000, dtype=np.int64), dim=4)
        config = FAEConfig(chunk_size=1024, num_chunks=35)
        reduction = RandEmBox(config).scan_reduction(profile)
        assert reduction == pytest.approx(1_000_000 / (35 * 1024))

    def test_upper_bound_at_least_mean(self):
        rng = np.random.default_rng(1)
        counts = rng.zipf(1.3, size=200_000).astype(np.int64)
        profile = TableProfile("big", counts, dim=4)
        est = RandEmBox(FAEConfig(), seed=2).estimate(profile, 3)
        assert est.hot_rows_upper >= est.hot_rows_mean >= est.hot_rows_lower


class TestStatisticalOptimizer:
    def test_converges_to_feasible_threshold(self, tiny_log, tiny_fae_config):
        profile = EmbeddingLogger(tiny_fae_config).profile(
            tiny_log, np.arange(len(tiny_log))
        )
        result = StatisticalOptimizer(tiny_fae_config).converge(profile)
        assert result.chosen.fits
        assert result.chosen.estimated_bytes_upper <= tiny_fae_config.gpu_memory_budget

    def test_picks_smallest_feasible_threshold(self, tiny_log, tiny_fae_config):
        optimizer = StatisticalOptimizer(tiny_fae_config)
        profile = EmbeddingLogger(tiny_fae_config).profile(
            tiny_log, np.arange(len(tiny_log))
        )
        result = optimizer.converge(profile)
        feasible = [e.threshold for e in result.evaluations if e.fits]
        assert result.threshold == min(feasible)

    def test_footprint_monotone_in_threshold(self, tiny_log, tiny_fae_config):
        optimizer = StatisticalOptimizer(tiny_fae_config)
        profile = EmbeddingLogger(tiny_fae_config).profile(
            tiny_log, np.arange(len(tiny_log))
        )
        sizes = [
            optimizer.evaluate(profile, t).estimated_bytes
            for t in (1e-1, 1e-2, 1e-3)
        ]
        assert sizes == sorted(sizes)

    def test_impossible_budget_raises(self, tiny_log, tiny_fae_config):
        from dataclasses import replace

        tight = replace(tiny_fae_config, gpu_memory_budget=64)
        profile = EmbeddingLogger(tight).profile(tiny_log, np.arange(len(tiny_log)))
        with pytest.raises(ValueError):
            StatisticalOptimizer(tight).converge(profile)


class TestCalibrator:
    def test_end_to_end(self, tiny_log, tiny_fae_config):
        output = Calibrator(tiny_fae_config).calibrate(tiny_log)
        assert output.threshold in tiny_fae_config.threshold_grid
        assert output.profile.num_sampled_inputs == round(
            tiny_fae_config.sample_rate * len(tiny_log)
        )
        assert output.total_seconds >= 0

    def test_full_profile_mode(self, tiny_log, tiny_fae_config):
        output = Calibrator(tiny_fae_config).calibrate(tiny_log, full_profile=True)
        assert output.profile.num_sampled_inputs == len(tiny_log)

    def test_sampled_faster_than_full(self, tiny_log, tiny_fae_config):
        """Fig 8's direction: sampling cuts profiling latency.

        Timings at this tiny scale are microseconds, so compare the best
        of several runs to suppress scheduler noise.
        """
        calibrator = Calibrator(tiny_fae_config)
        sampled = min(
            calibrator.calibrate(tiny_log).profiling_seconds for _ in range(5)
        )
        full = min(
            calibrator.calibrate(tiny_log, full_profile=True).profiling_seconds
            for _ in range(5)
        )
        assert sampled <= full * 1.5


class TestFAEConfig:
    def test_defaults_match_paper(self):
        config = FAEConfig()
        assert config.gpu_memory_budget == 256 * 2**20
        assert config.sample_rate == 0.05
        assert config.num_chunks == 35
        assert config.chunk_size == 1024
        assert config.t_value == pytest.approx(3.340)
        assert config.scheduler_initial_rate == 50
        assert config.scheduler_strip_length == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(gpu_memory_budget=0),
            dict(sample_rate=0.0),
            dict(sample_rate=1.5),
            dict(num_chunks=1),
            dict(chunk_size=0),
            dict(t_value=-1.0),
            dict(threshold_grid=()),
            dict(threshold_grid=(1e-3, 1e-2)),
            dict(threshold_grid=(1e-3, -1e-4)),
            dict(scheduler_initial_rate=0),
            dict(scheduler_initial_rate=150),
            dict(scheduler_strip_length=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FAEConfig(**kwargs)
