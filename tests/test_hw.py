"""Unit tests for the hardware substrate: specs, cost model, simulator, power."""

from dataclasses import replace

import pytest

from repro.hw import (
    Cluster,
    CostModel,
    NVLINK2,
    PCIE3_X16,
    PowerModel,
    TESLA_V100,
    TrainingSimulator,
    XEON_4116,
    characterize,
)
from repro.hw.spec import DeviceSpec, LinkSpec
from repro.hw.workload import analytic_hot_stats
from repro.models import workload_by_name


@pytest.fixture(scope="module")
def rmc2():
    return characterize(workload_by_name("RMC2"))


@pytest.fixture(scope="module")
def rmc1():
    return characterize(workload_by_name("RMC1"))


@pytest.fixture(scope="module")
def rmc3():
    return characterize(workload_by_name("RMC3"))


class TestDeviceSpec:
    def test_gemm_linear_in_flops(self):
        t1 = TESLA_V100.gemm_seconds(1e9, num_ops=0)
        t2 = TESLA_V100.gemm_seconds(2e9, num_ops=0)
        assert t2 == pytest.approx(2 * t1)

    def test_gather_has_overhead_floor(self):
        assert XEON_4116.gather_seconds(0, num_ops=5) == pytest.approx(
            5 * XEON_4116.op_overhead
        )

    def test_gather_rows_term(self):
        no_rows = XEON_4116.gather_seconds(1e6, num_ops=0, rows=0)
        with_rows = XEON_4116.gather_seconds(1e6, num_ops=0, rows=1e6)
        assert with_rows - no_rows == pytest.approx(1e6 * XEON_4116.row_access_cost)

    def test_stream_faster_than_gather(self):
        assert XEON_4116.stream_seconds(1e8) < XEON_4116.gather_seconds(1e8)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec("bad", 0, 1, 1, 0.5, 0.5, 0)
        with pytest.raises(ValueError):
            DeviceSpec("bad", 1, 1, 1, 1.5, 0.5, 0)


class TestLinkSpec:
    def test_transfer_components(self):
        link = LinkSpec("l", bandwidth=1e9, latency=1e-3)
        assert link.transfer_seconds(1e9, num_transfers=2) == pytest.approx(1.0 + 2e-3)

    def test_gpu_faster_than_cpu_on_gathers(self):
        bytes_moved = 1e8
        assert TESLA_V100.gather_seconds(bytes_moved) < XEON_4116.gather_seconds(bytes_moved)

    def test_nvlink_faster_than_pcie(self):
        assert NVLINK2.transfer_seconds(1e9) < PCIE3_X16.transfer_seconds(1e9)


class TestCluster:
    def test_allreduce_zero_on_single_gpu(self):
        assert Cluster(num_gpus=1).allreduce_seconds(1e9) == 0.0

    def test_allreduce_grows_with_gpus(self):
        t2 = Cluster(num_gpus=2).allreduce_seconds(1e8)
        t4 = Cluster(num_gpus=4).allreduce_seconds(1e8)
        assert t4 > t2 > 0

    def test_with_gpus(self):
        cluster = Cluster(num_gpus=4).with_gpus(2)
        assert cluster.num_gpus == 2
        assert cluster.gpu is TESLA_V100

    def test_rejects_zero_gpus(self):
        with pytest.raises(ValueError):
            Cluster(num_gpus=0)


class TestWorkloadCharacter:
    def test_rmc2_fields(self, rmc2):
        assert rmc2.num_tables == 26
        assert rmc2.lookup_rows_per_sample == 26
        assert rmc2.base_batch_size == 1024
        assert rmc2.num_samples == 45_000_000
        assert 0.5 < rmc2.hot_fraction < 0.95

    def test_rmc1_sequence_volumes(self, rmc1):
        assert rmc1.lookup_rows_per_sample == 43  # 1 + 21 + 21
        assert rmc1.num_tables == 3
        assert rmc1.dispatch_seconds > rmc2_dispatch()

    def test_hot_bytes_fit_budget(self, rmc2, rmc3):
        budget = 256 * 2**20
        assert rmc2.hot_bytes <= budget * 1.01
        assert rmc3.hot_bytes <= budget * 1.01

    def test_paper_hot_fraction_band(self, rmc1, rmc2, rmc3):
        """Abstract: hot inputs account for ~75-92% of the total."""
        for w in (rmc1, rmc2, rmc3):
            assert 0.6 <= w.hot_fraction <= 0.97

    def test_batches_per_epoch_weak_scaling(self, rmc2):
        assert rmc2.batches_per_epoch(2) == rmc2.batches_per_epoch(1) // 2

    def test_hot_fraction_override(self):
        w = characterize(workload_by_name("RMC2"), hot_fraction=0.5)
        assert w.hot_fraction == 0.5

    def test_validation(self, rmc2):
        with pytest.raises(ValueError):
            replace(rmc2, hot_fraction=1.5)
        with pytest.raises(ValueError):
            replace(rmc2, base_batch_size=0)


def rmc2_dispatch():
    return 8e-3


class TestAnalyticHotStats:
    def test_budget_monotone(self):
        from repro.data import criteo_kaggle_like

        schema = criteo_kaggle_like("paper")
        f_small, b_small = analytic_hot_stats(schema, 64 * 2**20)
        f_large, b_large = analytic_hot_stats(schema, 512 * 2**20)
        assert f_large > f_small
        assert b_large > b_small

    def test_impossible_budget(self):
        from repro.data import criteo_kaggle_like

        schema = criteo_kaggle_like("paper")
        with pytest.raises(ValueError):
            analytic_hot_stats(schema, 1024)  # smaller than the small tables


class TestCostModel:
    def test_cpu_embedding_slower_than_gpu(self, rmc2):
        cost = CostModel(Cluster(num_gpus=1), rmc2)
        assert cost.embedding_forward(1024, "cpu") > cost.embedding_forward(1024, "gpu")

    def test_backward_heavier_than_forward(self, rmc2):
        cost = CostModel(Cluster(num_gpus=1), rmc2)
        assert cost.embedding_backward(1024, "cpu") > cost.embedding_forward(1024, "cpu")

    def test_contention_grows_with_gpus(self, rmc2):
        t1 = CostModel(Cluster(num_gpus=1), rmc2).embedding_forward(1024, "cpu")
        t4 = CostModel(Cluster(num_gpus=4), rmc2).embedding_forward(1024, "cpu")
        assert t4 > t1

    def test_mlp_backward_double_forward(self, rmc2):
        cost = CostModel(Cluster(num_gpus=1), rmc2)
        fwd = cost.mlp_forward(1024)
        bwd = cost.mlp_backward(1024)
        assert 1.5 < bwd / fwd < 2.5

    def test_hot_sync_scales_with_hot_bytes(self, rmc2):
        cost_small = CostModel(Cluster(), replace(rmc2, hot_bytes=1e6))
        cost_large = CostModel(Cluster(), replace(rmc2, hot_bytes=1e8))
        assert cost_large.hot_bag_sync() > cost_small.hot_bag_sync()

    def test_allreduce_hot_exceeds_dense(self, rmc2):
        cost = CostModel(Cluster(num_gpus=4), rmc2)
        assert cost.allreduce_hot(1024) > cost.allreduce_dense()


class TestSimulator:
    def test_fae_beats_baseline_all_workloads(self, rmc1, rmc2, rmc3):
        for w in (rmc1, rmc2, rmc3):
            for k in (1, 2, 4):
                sim = TrainingSimulator(Cluster(num_gpus=k), w)
                assert sim.speedup() > 1.0, (w.name, k)

    def test_average_4gpu_speedup_in_paper_band(self, rmc1, rmc2, rmc3):
        """Headline claim: 2.34x average speedup on 4 GPUs."""
        speedups = [
            TrainingSimulator(Cluster(num_gpus=4), w).speedup()
            for w in (rmc1, rmc2, rmc3)
        ]
        average = sum(speedups) / 3
        assert 1.7 <= average <= 3.0

    def test_hot_batch_cheaper_than_baseline_batch(self, rmc2):
        sim = TrainingSimulator(Cluster(num_gpus=1), rmc2)
        assert sim.hot_batch().total < sim.baseline_batch().total

    def test_fae_between_pure_modes(self, rmc2):
        sim = TrainingSimulator(Cluster(num_gpus=1), rmc2)
        hot_all = sim.hot_batch().total * rmc2.batches_per_epoch(1)
        base = sim.epoch("baseline").seconds
        fae = sim.epoch("fae").seconds
        assert hot_all < fae < base

    def test_epoch_breakdown_structure(self, rmc2):
        sim = TrainingSimulator(Cluster(num_gpus=2), rmc2)
        baseline = sim.epoch("baseline")
        assert "optimizer_cpu" in baseline.breakdown.phases
        assert "embedding_sync" not in baseline.breakdown.phases
        fae = sim.epoch("fae")
        assert "embedding_sync" in fae.breakdown.phases
        assert fae.num_hot_batches > 0

    def test_fae_cuts_communication(self, rmc1, rmc2, rmc3):
        """Table V's direction: FAE communication is a fraction of baseline."""
        for w in (rmc1, rmc2, rmc3):
            sim = TrainingSimulator(Cluster(num_gpus=1), w)
            base_comm = sim.communication_minutes("baseline")
            fae_comm = sim.communication_minutes("fae")
            assert fae_comm < base_comm * 0.6, w.name

    def test_optimizer_dominant_in_baseline(self, rmc2):
        """Fig 14's observation: CPU optimizer is a large baseline slice."""
        sim = TrainingSimulator(Cluster(num_gpus=1), rmc2)
        breakdown = sim.epoch("baseline").breakdown
        assert breakdown.fraction("optimizer_cpu") > 0.15

    def test_speedup_grows_with_batch_size(self, rmc3):
        """Fig 15: larger mini-batches amortize FAE overheads."""
        speedups = [
            TrainingSimulator(Cluster(num_gpus=1), replace(rmc3, base_batch_size=b)).speedup()
            for b in (1024, 4096, 16384)
        ]
        assert speedups == sorted(speedups)
        assert speedups[-1] < 6.0  # paper caps near 4.7x

    def test_nvopt_between_baseline_and_fae(self, rmc3):
        """SS V: FAE is ~1.48x faster than NvOPT on Terabyte at 32K batch."""
        w = replace(rmc3, base_batch_size=32768)
        sim = TrainingSimulator(Cluster(num_gpus=1), w)
        nvopt = sim.epoch("nvopt").seconds
        fae = sim.epoch("fae").seconds
        base = sim.epoch("baseline").seconds
        assert fae < nvopt < base
        assert 1.1 < nvopt / fae < 2.2

    def test_training_minutes_scales_with_epochs(self, rmc2):
        sim = TrainingSimulator(Cluster(num_gpus=1), rmc2)
        assert sim.training_minutes("fae", epochs=10) == pytest.approx(
            10 * sim.epoch("fae").minutes
        )

    def test_unknown_mode(self, rmc2):
        with pytest.raises(ValueError):
            TrainingSimulator(Cluster(), rmc2).epoch("magic")

    def test_transitions_add_sync_time(self, rmc2):
        t0 = TrainingSimulator(Cluster(), rmc2, transitions_per_epoch=0).epoch("fae")
        t9 = TrainingSimulator(Cluster(), rmc2, transitions_per_epoch=9).epoch("fae")
        assert t9.seconds > t0.seconds
        assert t9.transitions == 9

    def test_baseline_scaling_non_ideal(self, rmc2):
        """Table IV: baseline barely improves 1 -> 4 GPUs (CPU-bound)."""
        t1 = TrainingSimulator(Cluster(num_gpus=1), rmc2).epoch("baseline").seconds
        t4 = TrainingSimulator(Cluster(num_gpus=4), rmc2).epoch("baseline").seconds
        assert t4 > t1 / 2  # far from ideal 4x scaling


class TestPowerModel:
    def test_fae_reduces_power(self, rmc1, rmc2, rmc3):
        """Table VI: 5.3-8.8% per-GPU power reduction."""
        pm = PowerModel()
        for w in (rmc1, rmc2, rmc3):
            sim = TrainingSimulator(Cluster(num_gpus=4), w)
            reduction = pm.reduction_percent(sim.epoch("baseline"), sim.epoch("fae"))
            assert 1.0 < reduction < 12.0, w.name

    def test_average_watts_in_v100_range(self, rmc2):
        pm = PowerModel()
        sim = TrainingSimulator(Cluster(num_gpus=4), rmc2)
        watts = pm.average_watts(sim.epoch("baseline"))
        assert 50 < watts < 70  # Table VI reports ~56-63 W

    def test_energy_consistency(self, rmc2):
        pm = PowerModel()
        timeline = TrainingSimulator(Cluster(), rmc2).epoch("fae")
        assert pm.energy_joules(timeline) == pytest.approx(
            pm.average_watts(timeline) * timeline.seconds
        )
