"""Tests for the roofline analysis."""

import pytest

from repro.hw import TESLA_V100, XEON_4116, characterize
from repro.hw.roofline import analyze_workload, roofline_point
from repro.models import workload_by_name


@pytest.fixture(scope="module")
def rmc2():
    return characterize(workload_by_name("RMC2"))


class TestRooflinePoint:
    def test_memory_bound_below_ridge(self):
        # intensity 0.25 flops/byte is far below any ridge point.
        point = roofline_point("gather", flops=1e6, bytes_moved=4e6, device=TESLA_V100)
        assert point.bound == "memory"
        assert point.attainable_flops == pytest.approx(0.25 * TESLA_V100.mem_bandwidth)

    def test_compute_bound_above_ridge(self):
        point = roofline_point("gemm", flops=1e12, bytes_moved=1e6, device=TESLA_V100)
        assert point.bound == "compute"
        assert point.attainable_flops == TESLA_V100.peak_flops

    def test_time_consistency(self):
        point = roofline_point("op", flops=1e9, bytes_moved=1e6, device=TESLA_V100)
        assert point.time_seconds == pytest.approx(point.flops / point.attainable_flops)

    def test_zero_flop_op_timed_by_bandwidth(self):
        point = roofline_point("copy", flops=0, bytes_moved=1e9, device=TESLA_V100)
        assert point.bound == "memory"
        assert point.time_seconds == pytest.approx(1e9 / TESLA_V100.mem_bandwidth)

    def test_validation(self):
        with pytest.raises(ValueError):
            roofline_point("bad", flops=-1, bytes_moved=1, device=TESLA_V100)
        with pytest.raises(ValueError):
            roofline_point("bad", flops=1, bytes_moved=0, device=TESLA_V100)


class TestAnalyzeWorkload:
    def test_embeddings_memory_bound_everywhere(self, rmc2):
        """The paper's premise: lookups never become compute-bound."""
        for device in (TESLA_V100, XEON_4116):
            for batch in (128, 1024, 16384):
                points = {p.name: p for p in analyze_workload(rmc2, device, batch)}
                assert points["embedding_lookup"].bound == "memory", (device.name, batch)

    def test_mlp_more_intense_than_lookup(self, rmc2):
        points = {p.name: p for p in analyze_workload(rmc2, TESLA_V100, 1024)}
        assert points["mlp"].intensity > points["embedding_lookup"].intensity * 10

    def test_gpu_faster_on_both_ops(self, rmc2):
        gpu = {p.name: p for p in analyze_workload(rmc2, TESLA_V100, 1024)}
        cpu = {p.name: p for p in analyze_workload(rmc2, XEON_4116, 1024)}
        for name in gpu:
            assert gpu[name].time_seconds < cpu[name].time_seconds
        # ...which is exactly why placement is decided by capacity and
        # transfer costs, not by op speed: the GPU wins raw ops, but the
        # tables don't fit.

    def test_mlp_intensity_grows_with_batch(self, rmc2):
        small = {p.name: p for p in analyze_workload(rmc2, TESLA_V100, 64)}
        large = {p.name: p for p in analyze_workload(rmc2, TESLA_V100, 8192)}
        assert large["mlp"].intensity > small["mlp"].intensity

    def test_bad_batch(self, rmc2):
        with pytest.raises(ValueError):
            analyze_workload(rmc2, TESLA_V100, 0)
