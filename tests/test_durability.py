"""Crash-consistent durability: state round-trips, the journaled cache
refresh, phase-targeted kill/resume exactness for both trainers, and the
certification fingerprint + checkpoint CLI."""

import json

import numpy as np
import pytest

from repro.core import fae_preprocess
from repro.core.drift import DriftDetector
from repro.core.hotcache import EmbeddingHotCache, HotCacheConfig
from repro.core.input_processor import FAEDataset
from repro.core.scheduler import ShuffleScheduler
from repro.core.sketch import CountMinSketch
from repro.data import train_test_split
from repro.dist import DistributedFAETrainer
from repro.models.dlrm import DLRM, DLRMConfig
from repro.obs import get_registry
from repro.resilience import (
    CheckpointManager,
    FaultPlan,
    JournalError,
    RefreshJournal,
    TrainerCheckpoint,
    capture_training_state,
    latest_checkpoint,
    load_checkpoint,
    read_checkpoint_meta,
    save_checkpoint,
)
from repro.resilience.certify import CertifyConfig, write_final_state
from repro.resilience.faults import REFRESH_PHASES
from repro.train import FAETrainer


def small_dlrm(schema, seed=3):
    return DLRM(schema, DLRMConfig("4-8", "8-1", seed=seed))


def _zipf_traffic(schema, rng, num=32):
    return {
        spec.name: rng.integers(0, spec.num_rows, size=(num, 1))
        for spec in schema.tables
    }


def _assert_tree_equal(a, b, path=""):
    """Byte-level equality over nested dict/list/array state trees."""
    assert type(a) is type(b), f"{path}: {type(a)} != {type(b)}"
    if isinstance(a, dict):
        assert sorted(a) == sorted(b), path
        for key in a:
            _assert_tree_equal(a[key], b[key], f"{path}/{key}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), path
        for index, (x, y) in enumerate(zip(a, b)):
            _assert_tree_equal(x, y, f"{path}[{index}]")
    elif isinstance(a, np.ndarray):
        assert a.dtype == b.dtype, path
        np.testing.assert_array_equal(a, b, err_msg=path)
    else:
        assert a == b, path


# ----------------------------------------------------------------------
# State round-trips: sketch, drift, cache, dataset
# ----------------------------------------------------------------------


class TestSketchState:
    def test_roundtrip_byte_equality(self):
        sketch = CountMinSketch(width=64, depth=3, seed=9)
        rng = np.random.default_rng(0)
        sketch.add(rng.integers(0, 500, size=200))
        sketch.decay(0.5)
        sketch.add(rng.integers(0, 500, size=100))

        state = sketch.state_dict()
        other = CountMinSketch(width=64, depth=3, seed=77)  # different hashes
        other.load_state_dict(state)
        _assert_tree_equal(other.state_dict(), sketch.state_dict())
        probe = np.arange(500)
        np.testing.assert_array_equal(other.query(probe), sketch.query(probe))

    def test_rejects_geometry_mismatch(self):
        state = CountMinSketch(width=64, depth=3).state_dict()
        with pytest.raises(ValueError):
            CountMinSketch(width=32, depth=3).load_state_dict(state)
        with pytest.raises(ValueError):
            CountMinSketch(width=64, depth=2).load_state_dict(state)

    def test_rejects_wrong_schema_version(self):
        state = CountMinSketch(width=8, depth=2).state_dict()
        state["schema_version"] = 99
        with pytest.raises(ValueError):
            CountMinSketch(width=8, depth=2).load_state_dict(state)


class TestDriftState:
    def test_history_roundtrip(self, tiny_plan, tiny_log):
        detector = DriftDetector(tiny_plan.bags, tiny_plan.hot_input_fraction)
        for _ in range(4):
            detector.check(tiny_log)
        state = detector.state_dict()
        fresh = DriftDetector(tiny_plan.bags, tiny_plan.hot_input_fraction)
        fresh.load_state_dict(state)
        assert fresh.history == detector.history
        assert len(fresh.history) == 4

    def test_rejects_wrong_schema_version(self, tiny_plan):
        detector = DriftDetector(tiny_plan.bags, tiny_plan.hot_input_fraction)
        state = detector.state_dict()
        state["schema_version"] = 0
        with pytest.raises(ValueError):
            detector.load_state_dict(state)


class TestCacheState:
    def _warm_cache(self, tiny_schema, seed=5, rounds=6):
        cache = EmbeddingHotCache.from_schema(
            tiny_schema,
            HotCacheConfig(budget_bytes=8 * 1024, rebalance_every=64, seed=2),
            large_table_min_bytes=1024,
        )
        rng = np.random.default_rng(seed)
        for _ in range(rounds):
            cache.observe(_zipf_traffic(tiny_schema, rng))
        cache.rebalance()
        for _ in range(3):
            cache.observe(_zipf_traffic(tiny_schema, rng))
        return cache

    def test_roundtrip_byte_equality(self, tiny_schema):
        cache = self._warm_cache(tiny_schema)
        fresh = EmbeddingHotCache.from_schema(
            tiny_schema,
            HotCacheConfig(budget_bytes=8 * 1024, rebalance_every=64, seed=2),
            large_table_min_bytes=1024,
        )
        fresh.load_state_dict(cache.state_dict())
        _assert_tree_equal(fresh.state_dict(), cache.state_dict())
        assert fresh.stats() == cache.stats()

    def test_restored_cache_continues_identically(self, tiny_schema):
        cache = self._warm_cache(tiny_schema)
        fresh = EmbeddingHotCache.from_schema(
            tiny_schema,
            HotCacheConfig(budget_bytes=8 * 1024, rebalance_every=64, seed=2),
            large_table_min_bytes=1024,
        )
        fresh.load_state_dict(cache.state_dict())
        # Replay identical traffic into both; every observation and the
        # next turnover must agree byte-for-byte.
        rng_a, rng_b = np.random.default_rng(8), np.random.default_rng(8)
        for _ in range(4):
            cache.observe(_zipf_traffic(tiny_schema, rng_a))
            fresh.observe(_zipf_traffic(tiny_schema, rng_b))
        delta_a = cache.rebalance()
        delta_b = fresh.rebalance()
        for name in set(delta_a.promoted) | set(delta_b.promoted):
            np.testing.assert_array_equal(
                delta_a.promoted.get(name), delta_b.promoted.get(name)
            )
            np.testing.assert_array_equal(
                delta_a.demoted.get(name), delta_b.demoted.get(name)
            )
        _assert_tree_equal(fresh.state_dict(), cache.state_dict())

    def test_plan_rebalance_is_pure(self, tiny_schema):
        """plan_rebalance must not mutate — crash recovery re-plans."""
        cache = self._warm_cache(tiny_schema)
        before = cache.state_dict()
        plan_a = cache.plan_rebalance()
        plan_b = cache.plan_rebalance()
        _assert_tree_equal(cache.state_dict(), before)
        assert plan_a.tick == plan_b.tick
        for name in set(plan_a.delta.promoted) | set(plan_b.delta.promoted):
            np.testing.assert_array_equal(
                plan_a.delta.promoted.get(name), plan_b.delta.promoted.get(name)
            )

    def test_apply_rejects_stale_plan(self, tiny_schema):
        cache = self._warm_cache(tiny_schema)
        plan = cache.plan_rebalance()
        rng = np.random.default_rng(1)
        cache.observe(_zipf_traffic(tiny_schema, rng))  # tick moves on
        with pytest.raises(ValueError):
            cache.apply_rebalance(plan)

    def test_rejects_wrong_schema_version(self, tiny_schema):
        cache = self._warm_cache(tiny_schema)
        state = cache.state_dict()
        state["schema_version"] = 42
        with pytest.raises(ValueError):
            cache.load_state_dict(state)


class TestDatasetState:
    def test_roundtrip_with_ragged_tail(self):
        batches = [
            np.arange(0, 64, dtype=np.int64),
            np.arange(64, 128, dtype=np.int64),
            np.arange(128, 150, dtype=np.int64),  # ragged tail
        ]
        dataset = FAEDataset(
            hot_batches=batches,
            cold_batches=[np.arange(150, 170, dtype=np.int64)],
            hot_mask=np.arange(170) < 150,
            batch_size=64,
        )
        rebuilt = FAEDataset.from_state_dict(dataset.state_dict())
        assert rebuilt.batch_size == 64
        assert len(rebuilt.hot_batches) == 3
        for a, b in zip(dataset.hot_batches, rebuilt.hot_batches):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(dataset.cold_batches, rebuilt.cold_batches):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(dataset.hot_mask, rebuilt.hot_mask)

    def test_empty_pools(self):
        dataset = FAEDataset(
            hot_batches=[],
            cold_batches=[np.arange(5, dtype=np.int64)],
            hot_mask=np.zeros(5, dtype=bool),
            batch_size=4,
        )
        rebuilt = FAEDataset.from_state_dict(dataset.state_dict())
        assert rebuilt.hot_batches == []
        assert len(rebuilt.cold_batches) == 1


# ----------------------------------------------------------------------
# Checkpoint v2: nested state, back-compat, corrupt-newest fallback
# ----------------------------------------------------------------------


def _cache_checkpoint(tiny_schema, step=7):
    model = small_dlrm(tiny_schema)
    cache = EmbeddingHotCache.from_schema(
        tiny_schema,
        HotCacheConfig(budget_bytes=8 * 1024, rebalance_every=64, seed=2),
        large_table_min_bytes=1024,
    )
    rng = np.random.default_rng(4)
    for _ in range(5):
        cache.observe(_zipf_traffic(tiny_schema, rng))
    cache.rebalance()
    dataset = FAEDataset(
        hot_batches=[np.arange(10, dtype=np.int64)],
        cold_batches=[np.arange(10, 30, dtype=np.int64)],
        hot_mask=np.arange(30) < 10,
        batch_size=10,
    )
    scheduler = ShuffleScheduler(num_hot_batches=1, num_cold_batches=1)
    return cache, TrainerCheckpoint(
        step=step,
        epoch=0,
        cursors={"hot": 0, "cold": 1},
        scheduler_state=scheduler.state_dict(),
        params=capture_training_state(model.dense_parameters(), model.tables),
        cache_state=cache.state_dict(),
        dataset_state=dataset.state_dict(),
        drift_state={"schema_version": 1, "baseline": 0.5, "tolerance": 0.25, "history": []},
    )


class TestCheckpointV2:
    def test_nested_state_roundtrip(self, tmp_path, tiny_schema):
        cache, ckpt = _cache_checkpoint(tiny_schema)
        path = save_checkpoint(tmp_path, ckpt)
        loaded = load_checkpoint(path)
        _assert_tree_equal(loaded.cache_state, ckpt.cache_state)
        _assert_tree_equal(loaded.dataset_state, ckpt.dataset_state)
        _assert_tree_equal(loaded.drift_state, ckpt.drift_state)
        # The restored cache state is loadable and byte-faithful.
        fresh = EmbeddingHotCache.from_schema(
            tiny_schema,
            HotCacheConfig(budget_bytes=8 * 1024, rebalance_every=64, seed=2),
            large_table_min_bytes=1024,
        )
        fresh.load_state_dict(loaded.cache_state)
        _assert_tree_equal(fresh.state_dict(), cache.state_dict())

    def test_none_states_stay_none(self, tmp_path, tiny_schema):
        model = small_dlrm(tiny_schema)
        ckpt = TrainerCheckpoint(
            step=1,
            epoch=0,
            cursors={},
            scheduler_state=ShuffleScheduler(1, 1).state_dict(),
            params=capture_training_state(model.dense_parameters(), model.tables),
        )
        loaded = load_checkpoint(save_checkpoint(tmp_path, ckpt))
        assert loaded.cache_state is None
        assert loaded.dataset_state is None
        assert loaded.drift_state is None

    def test_v1_archive_warns_and_cold_starts(self, tmp_path, tiny_schema, monkeypatch):
        # A pre-durability archive: written under version 1, no state tree.
        import repro.resilience.checkpoint as ckpt_mod

        model = small_dlrm(tiny_schema)
        v1 = TrainerCheckpoint(
            step=3,
            epoch=0,
            cursors={},
            scheduler_state=ShuffleScheduler(1, 1).state_dict(),
            params=capture_training_state(model.dense_parameters(), model.tables),
        )
        monkeypatch.setattr(ckpt_mod, "CHECKPOINT_VERSION", 1)
        path = save_checkpoint(tmp_path, v1)
        monkeypatch.undo()

        with pytest.warns(UserWarning, match="pre-durability"):
            loaded = load_checkpoint(path)
        assert loaded.cache_state is None

    def test_trainer_warns_on_stateless_cache_resume(self, tiny_schema, tiny_plan):
        model = small_dlrm(tiny_schema)
        cache = EmbeddingHotCache(
            tiny_plan.bags, HotCacheConfig(budget_bytes=8 * 1024, seed=2)
        )
        trainer = FAETrainer(model, tiny_plan, cache=cache)
        stats_before = cache.stats()
        ckpt = TrainerCheckpoint(
            step=0,
            epoch=0,
            cursors={},
            scheduler_state=ShuffleScheduler(1, 1).state_dict(),
            params=capture_training_state(model.dense_parameters(), model.tables),
        )
        with pytest.warns(UserWarning, match="cold-start"):
            trainer._restore_cache_state(ckpt)
        assert cache.stats() == stats_before  # untouched: cold start

    def test_latest_checkpoint_skips_corrupt_newest(self, tmp_path, tiny_schema):
        _cache, older = _cache_checkpoint(tiny_schema, step=5)
        _cache2, newer = _cache_checkpoint(tiny_schema, step=9)
        old_path = save_checkpoint(tmp_path, older)
        new_path = save_checkpoint(tmp_path, newer)
        new_path.write_bytes(b"garbage" * 100)
        assert latest_checkpoint(tmp_path) == old_path

    def test_read_checkpoint_meta(self, tmp_path, tiny_schema):
        _cache, ckpt = _cache_checkpoint(tiny_schema, step=11)
        path = save_checkpoint(tmp_path, ckpt)
        meta = read_checkpoint_meta(path)
        assert meta["step"] == 11
        assert meta["version"] == 2
        assert meta["size_bytes"] == path.stat().st_size


class TestAtomicFsync:
    def test_temp_file_is_fsynced_before_rename(self, tmp_path, monkeypatch):
        import os as os_mod

        from repro.resilience import atomic as atomic_mod

        synced = []
        real_fsync = os_mod.fsync
        monkeypatch.setattr(
            atomic_mod.os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))
        )
        target = tmp_path / "durable.txt"
        with atomic_mod.atomic_write(target) as tmp:
            tmp.write_text("payload")
        assert target.read_text() == "payload"
        # At least the temp file; the directory fsync is best-effort.
        assert len(synced) >= 1


# ----------------------------------------------------------------------
# Refresh journal
# ----------------------------------------------------------------------


def _tiny_delta():
    from repro.core.hotcache import CacheDelta

    return CacheDelta(
        promoted={"t": np.array([1, 5], dtype=np.int64)},
        demoted={"t": np.array([9], dtype=np.int64)},
    )


class TestRefreshJournal:
    def test_begin_commit_lifecycle(self, tmp_path):
        journal = RefreshJournal(tmp_path)
        assert journal.read() is None
        assert journal.pending() is None

        journal.begin(refresh_index=0, tick=12, generation=1, delta=_tiny_delta())
        record = journal.pending()
        assert record is not None
        assert record["status"] == "intent"
        assert record["tick"] == 12
        assert record["delta"]["promoted"]["t"] == [1, 5]

        journal.commit()
        assert journal.pending() is None
        assert journal.read()["status"] == "committed"

    def test_commit_without_intent_raises(self, tmp_path):
        journal = RefreshJournal(tmp_path)
        with pytest.raises(JournalError):
            journal.commit()
        journal.begin(refresh_index=0, tick=1, generation=1, delta=_tiny_delta())
        journal.commit()
        with pytest.raises(JournalError):
            journal.commit()  # already committed

    def test_unreadable_record_raises(self, tmp_path):
        journal = RefreshJournal(tmp_path)
        journal.path.write_text("{not json", encoding="utf-8")
        with pytest.raises(JournalError):
            journal.read()

    def test_wrong_version_raises(self, tmp_path):
        journal = RefreshJournal(tmp_path)
        journal.path.write_text(json.dumps({"version": 99}), encoding="utf-8")
        with pytest.raises(JournalError):
            journal.read()

    def test_rollforward_verifies_matching_intent(self, tmp_path):
        journal = RefreshJournal(tmp_path)
        journal.begin(refresh_index=2, tick=30, generation=3, delta=_tiny_delta())
        before = get_registry().counter("resilience.journal.rollforwards").value
        journal.verify_rollforward(tick=30, delta=_tiny_delta())
        after = get_registry().counter("resilience.journal.rollforwards").value
        assert after == before + 1

    def test_rollforward_rejects_mismatched_delta(self, tmp_path):
        from repro.core.hotcache import CacheDelta

        journal = RefreshJournal(tmp_path)
        journal.begin(refresh_index=2, tick=30, generation=3, delta=_tiny_delta())
        other = CacheDelta(promoted={"t": np.array([2], dtype=np.int64)}, demoted={})
        with pytest.raises(JournalError, match="nondeterministic"):
            journal.verify_rollforward(tick=30, delta=other)

    def test_rollforward_ignores_other_ticks(self, tmp_path):
        from repro.core.hotcache import CacheDelta

        journal = RefreshJournal(tmp_path)
        journal.begin(refresh_index=2, tick=30, generation=3, delta=_tiny_delta())
        # A different tick means the pending intent belongs to a refresh
        # the replay has not reached yet: no verdict either way.
        journal.verify_rollforward(
            tick=8, delta=CacheDelta(promoted={}, demoted={})
        )


# ----------------------------------------------------------------------
# Kill/resume exactness with the online cache (both trainers)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def cache_fae_setup(request):
    tiny_log = request.getfixturevalue("tiny_log")
    config = request.getfixturevalue("tiny_fae_config")
    train, test = train_test_split(tiny_log, 0.2, seed=4)
    plan = fae_preprocess(train, config, batch_size=64, drop_last=True)
    return tiny_log.schema, train, test, plan


def _make_cache(plan):
    # Budget below the plan's: the calibrated membership is over budget,
    # so refresh 0 is guaranteed a non-empty delta (demotions at least)
    # and the phase-complete kill points (replicas/repack/pools) fire.
    return EmbeddingHotCache(
        plan.bags,
        HotCacheConfig(budget_bytes=8 * 1024, rebalance_every=256, seed=2),
        profile=plan.calibration.profile,
    )


def _single_trainer(schema, plan, fault_plan=None, seed=21):
    model = small_dlrm(schema, seed=seed)
    return FAETrainer(
        model, plan, lr=0.15, fault_plan=fault_plan, cache=_make_cache(plan)
    )


def _dist_trainer(schema, plan, fault_plan=None, seed=21):
    replicas = [small_dlrm(schema, seed=seed) for _ in range(2)]
    return DistributedFAETrainer(
        replicas, plan, lr=0.15, fault_plan=fault_plan, cache=_make_cache(plan)
    )


def _final_params(trainer):
    model = trainer.model if hasattr(trainer, "model") else trainer.replicas[0]
    tables = model.tables if hasattr(trainer, "model") else trainer.master_tables
    return (
        [p.value.copy() for p in model.dense_parameters()],
        {name: table.weight.value.copy() for name, table in tables.items()},
    )


def _assert_same_final_state(trainer_a, trainer_b, result_a, result_b):
    dense_a, tables_a = _final_params(trainer_a)
    dense_b, tables_b = _final_params(trainer_b)
    for p, q in zip(dense_a, dense_b):
        np.testing.assert_array_equal(p, q)
    for name in tables_a:
        np.testing.assert_array_equal(tables_a[name], tables_b[name])
    assert result_a.final_test_accuracy == result_b.final_test_accuracy
    assert result_a.final_train_accuracy == result_b.final_train_accuracy
    assert trainer_a.cache.stats() == trainer_b.cache.stats()
    _assert_tree_equal(trainer_a.cache.state_dict(), trainer_b.cache.state_dict())


class _SimulatedKill(BaseException):
    """Stands in for SIGKILL in-process (no handlers, not an Exception)."""


@pytest.fixture()
def simulated_sigkill(monkeypatch):
    monkeypatch.setattr(
        FaultPlan,
        "_sigkill",
        staticmethod(lambda: (_ for _ in ()).throw(_SimulatedKill())),
    )


def _kill_and_resume(make_trainer, schema, train, test, plan, tmp_path, faults):
    """Crash a run at ``faults``, resume it, return (trainer, result)."""
    crash_dir = tmp_path / "crash"
    manager = CheckpointManager(crash_dir, every=1, keep=None)
    killed = make_trainer(schema, plan, fault_plan=FaultPlan.parse(faults))
    with pytest.raises(_SimulatedKill):
        killed.train(train, test, epochs=1, checkpoint=manager)

    resume_from = latest_checkpoint(crash_dir)
    assert resume_from is not None, "kill fired before any checkpoint was saved"
    resumed = make_trainer(schema, plan, seed=777)  # restore overwrites init
    result = resumed.train(
        train,
        test,
        epochs=1,
        checkpoint=CheckpointManager(crash_dir, every=1, keep=None),
        resume=resume_from,
    )
    return resumed, result, crash_dir


@pytest.mark.parametrize("make_trainer", [_single_trainer, _dist_trainer], ids=["single", "dist"])
class TestKillResumeExactness:
    def test_mid_segment_kill_resumes_exactly(
        self, tmp_path, cache_fae_setup, simulated_sigkill, make_trainer
    ):
        schema, train, test, plan = cache_fae_setup
        reference = make_trainer(schema, plan)
        ref_result = reference.train(
            train,
            test,
            epochs=1,
            checkpoint=CheckpointManager(tmp_path / "ref", every=1, keep=None),
        )
        assert reference.cache.rebalances >= 1

        # Kill mid-segment, two-thirds into the run.
        last_iteration = ref_result.history.points[-1].iteration
        crash_step = max(1, (2 * last_iteration) // 3)
        resumed, result, _ = _kill_and_resume(
            make_trainer, schema, train, test, plan, tmp_path,
            f"crash_step={crash_step}",
        )
        _assert_same_final_state(reference, resumed, ref_result, result)

    @pytest.mark.parametrize("phase", ["intent", "apply", "repack", "pools"])
    def test_mid_refresh_kill_rolls_forward(
        self, tmp_path, cache_fae_setup, simulated_sigkill, make_trainer, phase
    ):
        schema, train, test, plan = cache_fae_setup
        reference = make_trainer(schema, plan)
        ref_result = reference.train(
            train,
            test,
            epochs=1,
            checkpoint=CheckpointManager(tmp_path / "ref", every=1, keep=None),
        )
        stats = reference.cache.stats()
        assert stats["promotions"] + stats["demotions"] > 0, (
            "fixture must produce a non-empty refresh for phase kills"
        )

        resumed, result, crash_dir = _kill_and_resume(
            make_trainer, schema, train, test, plan, tmp_path,
            f"crash_refresh=0@{phase}",
        )
        _assert_same_final_state(reference, resumed, ref_result, result)
        # The journaled transaction the crash interrupted was rolled
        # forward and committed by the resumed run.
        assert RefreshJournal(crash_dir).read()["status"] == "committed"

    def test_checkpoint_boundary_kill_resumes_exactly(
        self, tmp_path, cache_fae_setup, simulated_sigkill, make_trainer
    ):
        schema, train, test, plan = cache_fae_setup
        reference = make_trainer(schema, plan)
        ref_result = reference.train(
            train,
            test,
            epochs=1,
            checkpoint=CheckpointManager(tmp_path / "ref", every=1, keep=None),
        )
        resumed, result, _ = _kill_and_resume(
            make_trainer, schema, train, test, plan, tmp_path, "crash_checkpoint=1"
        )
        _assert_same_final_state(reference, resumed, ref_result, result)


# ----------------------------------------------------------------------
# Certification fingerprint + CLI surfaces
# ----------------------------------------------------------------------


class TestFinalStateFingerprint:
    def test_deterministic_bytes(self, tmp_path, cache_fae_setup):
        schema, train, test, plan = cache_fae_setup
        trainer = _single_trainer(schema, plan)
        result = trainer.train(train, test, epochs=1)
        a = write_final_state(tmp_path / "a.json", trainer.model, result, trainer.cache)
        b = write_final_state(tmp_path / "b.json", trainer.model, result, trainer.cache)
        assert a.read_bytes() == b.read_bytes()
        payload = json.loads(a.read_text())
        assert payload["version"] == 1
        assert payload["cache"]["stats"]["rebalances"] == trainer.cache.rebalances

    def test_detects_param_drift(self, tmp_path, cache_fae_setup):
        schema, train, test, plan = cache_fae_setup
        trainer = _single_trainer(schema, plan)
        result = trainer.train(train, test, epochs=1)
        a = write_final_state(tmp_path / "a.json", trainer.model, result, trainer.cache)
        trainer.model.dense_parameters()[0].value[0] += 1e-8
        b = write_final_state(tmp_path / "b.json", trainer.model, result, trainer.cache)
        assert a.read_bytes() != b.read_bytes()


class TestCertifyConfig:
    def test_kill_specs_cover_requested_matrix(self):
        config = CertifyConfig(phases=("plan", "commit"), checkpoints=(0, 2), steps=(7,))
        assert config.kill_specs() == [
            "crash_refresh=0@plan",
            "crash_refresh=0@commit",
            "crash_checkpoint=0",
            "crash_checkpoint=2",
            "crash_step=7",
        ]

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError):
            CertifyConfig(phases=("warp",))

    def test_default_phases_are_complete(self):
        assert CertifyConfig().phases == REFRESH_PHASES


class TestCheckpointCLI:
    def test_ls_reports_and_verify_passes(self, tmp_path, tiny_schema, capsys):
        from repro.cli import main

        _cache, ckpt = _cache_checkpoint(tiny_schema, step=4)
        save_checkpoint(tmp_path, ckpt)
        assert main(["checkpoint", "ls", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "ckpt-00000004.npz" in out
        assert "ok" in out
        assert main(["checkpoint", "verify", str(tmp_path)]) == 0

    def test_corruption_exits_nonzero(self, tmp_path, tiny_schema, capsys):
        from repro.cli import main

        _cache, older = _cache_checkpoint(tiny_schema, step=4)
        _cache2, newer = _cache_checkpoint(tiny_schema, step=8)
        save_checkpoint(tmp_path, older)
        newest = save_checkpoint(tmp_path, newer)
        newest.write_bytes(b"x" * 64)
        assert main(["checkpoint", "ls", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "corrupt" in out
        assert main(["checkpoint", "verify", str(tmp_path)]) == 1
        assert main(["checkpoint", "verify", str(tmp_path / "ckpt-00000004.npz")]) == 0

    def test_missing_target_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["checkpoint", "ls", str(tmp_path / "nope")]) == 2


class TestFaultPlanCrashSpecs:
    def test_parse_crash_specs(self):
        plan = FaultPlan.parse("crash_refresh=2@repack,crash_checkpoint=1,crash_step=9")
        assert plan.crash_refresh == (2, "repack")
        assert plan.crash_checkpoint == 1
        assert plan.crash_step == 9

    def test_rejects_bad_phase(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("crash_refresh=0@warp")

    def test_crash_hooks_fire_only_on_target(self, simulated_sigkill):
        plan = FaultPlan.parse("crash_refresh=1@apply")
        plan.maybe_crash_refresh(0, "apply")
        plan.maybe_crash_refresh(1, "plan")
        with pytest.raises(_SimulatedKill):
            plan.maybe_crash_refresh(1, "apply")

    def test_crash_checkpoint_counts_saves(self, simulated_sigkill):
        plan = FaultPlan.parse("crash_checkpoint=1")
        plan.maybe_crash_checkpoint()  # save 0
        with pytest.raises(_SimulatedKill):
            plan.maybe_crash_checkpoint()  # save 1
