"""Tests for LR schedules, momentum SGD, and early-stopping criteria."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.nn.lr_schedule import (
    ConstantSchedule,
    CosineSchedule,
    MomentumSGD,
    StepDecaySchedule,
    WarmupPolynomialSchedule,
)
from repro.train.early_stopping import ConsecutiveIncrease, GeneralizationLoss


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(0.1)
        assert schedule(0) == schedule(10_000) == 0.1

    def test_warmup_ramps_linearly(self):
        schedule = WarmupPolynomialSchedule(
            base_lr=1.0, warmup_steps=10, decay_start=20, decay_steps=10
        )
        assert schedule(0) == pytest.approx(0.1)
        assert schedule(4) == pytest.approx(0.5)
        assert schedule(9) == pytest.approx(1.0)

    def test_plateau_then_decay(self):
        schedule = WarmupPolynomialSchedule(
            base_lr=1.0, warmup_steps=5, decay_start=10, decay_steps=10, power=2.0
        )
        assert schedule(7) == 1.0
        assert schedule(15) == pytest.approx(0.25)  # (1 - 0.5)^2
        assert schedule(100) == 0.0

    def test_warmup_validation(self):
        with pytest.raises(ValueError):
            WarmupPolynomialSchedule(1.0, warmup_steps=10, decay_start=5, decay_steps=5)

    def test_step_decay(self):
        schedule = StepDecaySchedule(base_lr=1.0, step_size=100, gamma=0.5)
        assert schedule(99) == 1.0
        assert schedule(100) == 0.5
        assert schedule(250) == 0.25

    def test_cosine_endpoints(self):
        schedule = CosineSchedule(base_lr=1.0, total_steps=100, min_lr=0.1)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(50) == pytest.approx(0.55)
        assert schedule(100) == pytest.approx(0.1)
        assert schedule(500) == pytest.approx(0.1)  # clamped past the end

    def test_cosine_monotone_decreasing(self):
        schedule = CosineSchedule(base_lr=1.0, total_steps=50)
        values = [schedule(s) for s in range(51)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ConstantSchedule(0.0),
            lambda: StepDecaySchedule(1.0, 0),
            lambda: StepDecaySchedule(1.0, 10, gamma=1.5),
            lambda: CosineSchedule(1.0, 10, min_lr=2.0),
        ],
    )
    def test_invalid_parameters(self, factory):
        with pytest.raises(ValueError):
            factory()


class TestMomentumSGD:
    def test_momentum_accumulates_velocity(self):
        p = Parameter("w", np.zeros((1, 1), dtype=np.float32))
        opt = MomentumSGD([p], schedule=0.1, momentum=0.5)
        deltas = []
        for _ in range(3):
            before = float(p.value.item())
            p.accumulate_dense(np.ones((1, 1), dtype=np.float32))
            opt.step()
            deltas.append(abs(float(p.value.item()) - before))
        # velocity grows: 1, 1.5, 1.75 (times lr)
        assert deltas[1] > deltas[0]
        assert deltas[2] > deltas[1]
        assert deltas[0] == pytest.approx(0.1)
        assert deltas[1] == pytest.approx(0.15)

    def test_zero_momentum_is_plain_sgd(self):
        from repro.nn import SGD

        a = Parameter("a", np.ones((2, 2), dtype=np.float32))
        b = Parameter("b", np.ones((2, 2), dtype=np.float32))
        g = np.full((2, 2), 0.5, dtype=np.float32)
        a.accumulate_dense(g)
        b.accumulate_dense(g)
        MomentumSGD([a], schedule=0.2, momentum=0.0).step()
        SGD([b], lr=0.2).step()
        np.testing.assert_allclose(a.value, b.value)

    def test_schedule_drives_lr(self):
        p = Parameter("w", np.zeros(1, dtype=np.float32))
        schedule = StepDecaySchedule(base_lr=1.0, step_size=1, gamma=0.5)
        opt = MomentumSGD([p], schedule=schedule, momentum=0.0)
        p.accumulate_dense(np.ones(1, dtype=np.float32))
        opt.step()  # lr 1.0
        assert p.value[0] == pytest.approx(-1.0)
        p.accumulate_dense(np.ones(1, dtype=np.float32))
        opt.step()  # lr 0.5
        assert p.value[0] == pytest.approx(-1.5)
        assert opt.current_lr == 0.25

    def test_sparse_grads_skip_momentum(self):
        p = Parameter("e", np.zeros((4, 2), dtype=np.float32))
        opt = MomentumSGD([p], schedule=0.1, momentum=0.9)
        for _ in range(2):
            p.accumulate_sparse(np.array([1]), np.ones((1, 2), dtype=np.float32))
            opt.step()
        # plain SGD on sparse rows: two steps of lr*1 each
        np.testing.assert_allclose(p.value[1], -0.2, rtol=1e-6)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            MomentumSGD([], schedule=0.1, momentum=1.0)


class TestGeneralizationLoss:
    def test_no_stop_while_improving(self):
        criterion = GeneralizationLoss(alpha=5.0)
        for loss in (1.0, 0.9, 0.8):
            assert not criterion.update(loss)

    def test_stops_on_large_regression(self):
        criterion = GeneralizationLoss(alpha=5.0)
        criterion.update(1.0)
        criterion.update(0.5)
        assert criterion.update(0.6)  # 20% above the best 0.5
        assert criterion.stopped

    def test_small_regression_tolerated(self):
        criterion = GeneralizationLoss(alpha=10.0)
        criterion.update(0.50)
        assert not criterion.update(0.52)  # 4% < 10%

    def test_validation(self):
        with pytest.raises(ValueError):
            GeneralizationLoss(alpha=0.0)
        with pytest.raises(ValueError):
            GeneralizationLoss().update(-1.0)


class TestConsecutiveIncrease:
    def test_paper_u4_behaviour(self):
        criterion = ConsecutiveIncrease(strips=4)
        for loss in (1.0, 1.1, 1.2, 1.3):
            assert not criterion.update(loss)
        assert criterion.update(1.4)  # 4th consecutive increase

    def test_streak_resets_on_improvement(self):
        criterion = ConsecutiveIncrease(strips=2)
        criterion.update(1.0)
        criterion.update(1.1)
        criterion.update(0.9)  # reset
        criterion.update(1.0)
        assert not criterion.stopped
        assert criterion.update(1.1)

    def test_flat_does_not_count(self):
        criterion = ConsecutiveIncrease(strips=1)
        criterion.update(1.0)
        assert not criterion.update(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConsecutiveIncrease(strips=0)
