"""Tests for the overlap-aware pipeline simulator."""

import pytest

from repro.hw import Cluster, PipelinedSimulator, TrainingSimulator, characterize
from repro.hw.pipeline import Resource, Task, schedule
from repro.models import workload_by_name


@pytest.fixture(scope="module")
def rmc2():
    return characterize(workload_by_name("RMC2"))


class TestScheduler:
    def test_serial_chain(self):
        r = {"a": Resource("a")}
        t1 = Task("t1", "a", 2.0)
        t2 = Task("t2", "a", 3.0, [t1])
        result = schedule([t1, t2], r)
        assert result.makespan == 5.0
        assert t2.start == 2.0

    def test_parallel_resources_overlap(self):
        r = {"a": Resource("a"), "b": Resource("b")}
        t1 = Task("t1", "a", 2.0)
        t2 = Task("t2", "b", 2.0)  # independent, different resource
        result = schedule([t1, t2], r)
        assert result.makespan == 2.0
        assert result.utilization["a"] == 1.0

    def test_resource_serialization(self):
        r = {"a": Resource("a")}
        t1 = Task("t1", "a", 2.0)
        t2 = Task("t2", "a", 2.0)  # independent but same resource
        result = schedule([t1, t2], r)
        assert result.makespan == 4.0

    def test_dependency_across_resources(self):
        r = {"a": Resource("a"), "b": Resource("b")}
        t1 = Task("t1", "a", 2.0)
        t2 = Task("t2", "b", 1.0, [t1])
        result = schedule([t1, t2], r)
        assert t2.start == 2.0
        assert result.makespan == 3.0

    def test_unscheduled_dep_rejected(self):
        r = {"a": Resource("a")}
        t1 = Task("t1", "a", 1.0)
        t2 = Task("t2", "a", 1.0, [t1])
        with pytest.raises(ValueError):
            schedule([t2, t1], r)  # wrong order

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Task("bad", "a", -1.0)

    def test_critical_resource(self):
        r = {"a": Resource("a"), "b": Resource("b")}
        t1 = Task("t1", "a", 5.0)
        t2 = Task("t2", "b", 1.0)
        result = schedule([t1, t2], r)
        assert result.critical_resource() == "a"


class TestPipelinedSimulator:
    def test_pipelined_not_slower_than_serial(self, rmc2):
        cluster = Cluster(num_gpus=1)
        pipe = PipelinedSimulator(cluster, rmc2)
        serial = TrainingSimulator(cluster, rmc2)
        n = 32
        pipelined = pipe.baseline_epoch(max_batches=n).makespan
        serial_time = serial.baseline_batch().total * n
        assert pipelined <= serial_time * 1.001

    def test_overlap_factor_bounds(self, rmc2):
        pipe = PipelinedSimulator(Cluster(num_gpus=1), rmc2)
        factor = pipe.overlap_factor("baseline", max_batches=32)
        # Overlap helps but cannot exceed the number of resources.
        assert 1.0 <= factor <= 4.0

    def test_cpu_is_baseline_critical_resource(self, rmc2):
        pipe = PipelinedSimulator(Cluster(num_gpus=1), rmc2)
        result = pipe.baseline_epoch(max_batches=32)
        assert result.critical_resource() == "cpu"

    def test_gpu_is_fae_hot_critical_resource(self, rmc2):
        from dataclasses import replace

        all_hot = replace(rmc2, hot_fraction=1.0)
        pipe = PipelinedSimulator(Cluster(num_gpus=1), all_hot)
        result = pipe.fae_epoch(max_batches=32)
        assert result.critical_resource() == "gpu"

    def test_fae_advantage_survives_overlap(self, rmc2):
        """The paper's win is not an artifact of serial accounting."""
        pipe = PipelinedSimulator(Cluster(num_gpus=1), rmc2)
        n = 64
        baseline = pipe.baseline_epoch(max_batches=n).makespan
        fae = pipe.fae_epoch(max_batches=n).makespan
        assert fae < baseline

    def test_lookahead_validation(self, rmc2):
        with pytest.raises(ValueError):
            PipelinedSimulator(Cluster(), rmc2, lookahead=0)

    def test_deeper_lookahead_helps_or_equal(self, rmc2):
        shallow = PipelinedSimulator(Cluster(num_gpus=1), rmc2, lookahead=1)
        deep = PipelinedSimulator(Cluster(num_gpus=1), rmc2, lookahead=4)
        n = 32
        assert (
            deep.baseline_epoch(max_batches=n).makespan
            <= shallow.baseline_epoch(max_batches=n).makespan * 1.001
        )

    def test_utilization_fractions_valid(self, rmc2):
        pipe = PipelinedSimulator(Cluster(num_gpus=2), rmc2)
        result = pipe.baseline_epoch(max_batches=16)
        for fraction in result.utilization.values():
            assert 0.0 <= fraction <= 1.0
