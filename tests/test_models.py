"""Unit tests for DLRM, TBSM, and the workload zoo."""

import numpy as np
import pytest

from repro.data import SyntheticClickLog, SyntheticConfig
from repro.data.loader import batch_from_log
from repro.data.schema import DatasetSchema, EmbeddingTableSpec
from repro.models import (
    DLRM,
    DLRMConfig,
    TBSM,
    TBSMConfig,
    WORKLOADS,
    build_model,
    workload_by_name,
)
from repro.nn import BCEWithLogits, SGD


@pytest.fixture(scope="module")
def dlrm_schema():
    return DatasetSchema(
        name="d",
        num_dense=3,
        tables=(
            EmbeddingTableSpec("t0", num_rows=40, dim=4, zipf_exponent=1.0),
            EmbeddingTableSpec("t1", num_rows=30, dim=4, zipf_exponent=1.0, multiplicity=2),
        ),
        num_samples=100,
    )


@pytest.fixture(scope="module")
def tbsm_schema():
    return DatasetSchema(
        name="t",
        num_dense=2,
        tables=(
            EmbeddingTableSpec("user", num_rows=25, dim=4, zipf_exponent=1.0),
            EmbeddingTableSpec("item", num_rows=50, dim=4, zipf_exponent=1.0, multiplicity=5),
            EmbeddingTableSpec("cat", num_rows=10, dim=4, zipf_exponent=1.0, multiplicity=5),
        ),
        num_samples=100,
    )


def make_batch(schema, n=8, seed=0):
    log = SyntheticClickLog(schema, SyntheticConfig(num_samples=n, seed=seed))
    return log, batch_from_log(log, np.arange(n))


class TestDLRM:
    def test_forward_shape(self, dlrm_schema):
        model = DLRM(dlrm_schema, DLRMConfig("3-8-4", "8-1", seed=0))
        _, batch = make_batch(dlrm_schema)
        assert model.forward(batch).shape == (8,)

    def test_backward_populates_all_grads(self, dlrm_schema):
        model = DLRM(dlrm_schema, DLRMConfig("3-8-4", "8-1", seed=0))
        _, batch = make_batch(dlrm_schema)
        logits = model.forward(batch)
        model.backward(np.ones_like(logits, dtype=np.float32))
        for p in model.dense_parameters():
            assert p.grad is not None, p.name
        for table in model.tables.values():
            assert table.weight.sparse_grads, table.name

    def test_bottom_width_must_match_dim(self, dlrm_schema):
        with pytest.raises(ValueError):
            DLRM(dlrm_schema, DLRMConfig("3-8-5", "8-1"))

    def test_bottom_input_must_match_dense(self, dlrm_schema):
        with pytest.raises(ValueError):
            DLRM(dlrm_schema, DLRMConfig("4-8-4", "8-1"))

    def test_top_must_end_in_one(self, dlrm_schema):
        with pytest.raises(ValueError):
            DLRM(dlrm_schema, DLRMConfig("3-8-4", "8-2"))

    def test_mixed_dims_rejected(self):
        schema = DatasetSchema(
            "m", 2,
            (
                EmbeddingTableSpec("a", num_rows=4, dim=4),
                EmbeddingTableSpec("b", num_rows=4, dim=8),
            ),
            10,
        )
        with pytest.raises(ValueError):
            DLRM(schema, DLRMConfig("2-4", "4-1"))

    def test_set_get_bag_roundtrip(self, dlrm_schema):
        model = DLRM(dlrm_schema, DLRMConfig("3-8-4", "8-1"))
        original = model.get_bag("t0")
        sentinel = object()
        model.set_bag("t0", sentinel)
        assert model.get_bag("t0") is sentinel
        model.set_bag("t0", original)

    def test_set_bag_unknown_table(self, dlrm_schema):
        model = DLRM(dlrm_schema, DLRMConfig("3-8-4", "8-1"))
        with pytest.raises(KeyError):
            model.set_bag("nope", None)

    def test_loss_decreases_with_training(self, dlrm_schema):
        model = DLRM(dlrm_schema, DLRMConfig("3-8-4", "8-1", seed=1))
        log = SyntheticClickLog(dlrm_schema, SyntheticConfig(num_samples=256, seed=2))
        batch = batch_from_log(log, np.arange(256))
        loss_fn = BCEWithLogits()
        opt = SGD(model.parameters(), lr=0.2)
        first = None
        for _step in range(30):
            loss = loss_fn.forward(model.forward(batch), batch.labels)
            model.backward(loss_fn.backward())
            opt.step()
            first = first or loss
        assert loss < first

    def test_cost_hooks(self, dlrm_schema):
        model = DLRM(dlrm_schema, DLRMConfig("3-8-4", "8-1"))
        assert model.mlp_flops_per_sample() > 0
        assert model.lookups_per_sample() == 3
        assert model.embedding_bytes() == dlrm_schema.total_embedding_bytes

    def test_backward_before_forward(self, dlrm_schema):
        model = DLRM(dlrm_schema, DLRMConfig("3-8-4", "8-1"))
        with pytest.raises(RuntimeError):
            model.backward(np.zeros(4, dtype=np.float32))


class TestTBSM:
    def test_forward_shape(self, tbsm_schema):
        model = TBSM(tbsm_schema, TBSMConfig("2-4", ts_hidden="9-6-5", top_mlp="9-8-1"))
        _, batch = make_batch(tbsm_schema)
        assert model.forward(batch).shape == (8,)

    def test_sequence_and_static_tables_detected(self, tbsm_schema):
        model = TBSM(tbsm_schema, TBSMConfig("2-4"))
        assert set(model.seq_tables) == {"item", "cat"}
        assert set(model.static_tables) == {"user"}
        assert model.seq_len == 5

    def test_backward_populates_all_grads(self, tbsm_schema):
        model = TBSM(tbsm_schema, TBSMConfig("2-4", seed=3))
        _, batch = make_batch(tbsm_schema)
        logits = model.forward(batch)
        model.backward(np.ones_like(logits, dtype=np.float32))
        for p in model.dense_parameters():
            assert p.grad is not None, p.name
        for table in model.tables.values():
            assert table.weight.sparse_grads, table.name

    def test_numeric_gradient_end_to_end(self, tbsm_schema):
        model = TBSM(tbsm_schema, TBSMConfig("2-4", seed=5))
        log, batch = make_batch(tbsm_schema, n=6, seed=4)
        loss_fn = BCEWithLogits()

        def loss():
            return loss_fn.forward(model.forward(batch), batch.labels)

        base = loss()
        model.backward(loss_fn.backward())
        param = model.tables["item"].weight
        grad = param.densified_grad().copy()
        for p in model.parameters():
            p.zero_grad()
        row = int(batch.sparse["item"][0, 0])
        eps = 1e-3
        old = param.value[row, 1]
        param.value[row, 1] = old + eps
        up = loss()
        param.value[row, 1] = old - eps
        down = loss()
        param.value[row, 1] = old
        numeric = (up - down) / (2 * eps)
        assert numeric == pytest.approx(grad[row, 1], rel=0.05, abs=1e-4)

    def test_wrong_sequence_length_rejected(self, tbsm_schema):
        model = TBSM(tbsm_schema, TBSMConfig("2-4"))
        log, batch = make_batch(tbsm_schema)
        bad_sparse = dict(batch.sparse)
        bad_sparse["item"] = bad_sparse["item"][:, :3]
        from repro.data.loader import MiniBatch

        bad = MiniBatch(
            dense=batch.dense, sparse=bad_sparse, labels=batch.labels, indices=batch.indices
        )
        with pytest.raises(ValueError):
            model.forward(bad)

    def test_needs_exactly_one_seq_length(self):
        schema = DatasetSchema(
            "bad", 2,
            (
                EmbeddingTableSpec("a", num_rows=4, dim=4, multiplicity=3),
                EmbeddingTableSpec("b", num_rows=4, dim=4, multiplicity=5),
            ),
            10,
        )
        with pytest.raises(ValueError):
            TBSM(schema, TBSMConfig("2-4"))


class TestZoo:
    def test_table_i_rows(self):
        assert WORKLOADS["RMC1"].model_kind == "tbsm"
        assert WORKLOADS["RMC2"].dataset == "criteo-kaggle"
        assert WORKLOADS["RMC3"].bottom_mlp == "13-512-256-64"

    def test_weak_scaled_batch_sizes(self):
        spec = workload_by_name("rmc2")
        assert spec.batch_size_for(1) == 1024
        assert spec.batch_size_for(4) == 4096
        with pytest.raises(ValueError):
            spec.batch_size_for(0)

    def test_unknown_workload(self):
        with pytest.raises(ValueError):
            workload_by_name("RMC9")

    @pytest.mark.parametrize("name", ["RMC1", "RMC2", "RMC3"])
    def test_build_model_tiny(self, name):
        spec = workload_by_name(name)
        model = build_model(spec, scale="tiny")
        assert model.num_parameters() > 0

    def test_build_model_trains_one_step(self):
        spec = workload_by_name("RMC2")
        from repro.data import dataset_by_name

        schema = dataset_by_name(spec.dataset, "tiny")
        model = build_model(spec, schema=schema)
        log = SyntheticClickLog(schema, SyntheticConfig(num_samples=16, seed=0))
        batch = batch_from_log(log, np.arange(16))
        loss_fn = BCEWithLogits()
        loss = loss_fn.forward(model.forward(batch), batch.labels)
        model.backward(loss_fn.backward())
        SGD(model.parameters(), lr=0.1).step()
        assert np.isfinite(loss)
