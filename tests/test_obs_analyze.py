"""Unit tests for the trace analyzer (repro.obs.analyze)."""

import json

import pytest

from repro.obs import (
    analyze_file,
    analyze_records,
    render_analysis,
    span,
    tracing,
)
from repro.obs.analyze import ANALYSIS_SCHEMA_VERSION


def _span(span_id, name, start, end, parent_id=None):
    return {
        "type": "span",
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "start": start,
        "end": end,
        "duration": end - start,
    }


@pytest.fixture
def simple_trace():
    """One root (0..10) with two children (1..4 and 5..9), one grandchild."""
    return [
        _span(1, "root", 0.0, 10.0),
        _span(2, "load", 1.0, 4.0, parent_id=1),
        _span(3, "train", 5.0, 9.0, parent_id=1),
        _span(4, "train.step", 6.0, 8.0, parent_id=3),
    ]


class TestSelfTime:
    def test_self_is_duration_minus_direct_children(self, simple_trace):
        analysis = analyze_records(simple_trace)
        by_path = {st.path: st for st in analysis.aggregates}
        assert by_path[("root",)].self_time == pytest.approx(10.0 - 3.0 - 4.0)
        assert by_path[("root", "load")].self_time == pytest.approx(3.0)
        assert by_path[("root", "train")].self_time == pytest.approx(4.0 - 2.0)
        assert by_path[("root", "train", "train.step")].self_time == pytest.approx(2.0)

    def test_conservation_self_total_equals_roots_total(self, simple_trace):
        analysis = analyze_records(simple_trace)
        assert analysis.roots_total == pytest.approx(10.0)
        assert analysis.self_total == pytest.approx(analysis.roots_total)
        assert analysis.coverage() == pytest.approx(1.0)

    def test_multiple_roots_sum_into_roots_total(self):
        analysis = analyze_records(
            [_span(1, "a", 0.0, 2.0), _span(2, "b", 3.0, 8.0)]
        )
        assert analysis.roots_total == pytest.approx(7.0)
        assert analysis.self_total == pytest.approx(7.0)

    def test_negative_self_left_unclamped_in_stats(self):
        # Improperly nested child longer than its parent: self goes
        # negative in the stats (so sums stay honest) and is clamped
        # only in the rendered output.
        records = [_span(1, "p", 0.0, 1.0), _span(2, "c", 0.0, 3.0, parent_id=1)]
        analysis = analyze_records(records)
        by_path = {st.path: st for st in analysis.aggregates}
        assert by_path[("p",)].self_time == pytest.approx(-2.0)
        assert "-2.0000" not in render_analysis(analysis)


class TestAggregation:
    def test_same_path_instances_aggregate(self):
        records = [
            _span(1, "root", 0.0, 10.0),
            _span(2, "step", 1.0, 2.0, parent_id=1),
            _span(3, "step", 3.0, 7.0, parent_id=1),
        ]
        analysis = analyze_records(records)
        by_path = {st.path: st for st in analysis.aggregates}
        step = by_path[("root", "step")]
        assert step.count == 2
        assert step.total == pytest.approx(5.0)
        assert step.min == pytest.approx(1.0)
        assert step.max == pytest.approx(4.0)

    def test_same_name_different_parents_stay_separate(self):
        records = [
            _span(1, "a", 0.0, 4.0),
            _span(2, "sync", 0.0, 1.0, parent_id=1),
            _span(3, "b", 5.0, 9.0),
            _span(4, "sync", 5.0, 6.0, parent_id=3),
        ]
        paths = {st.path for st in analyze_records(records).aggregates}
        assert ("a", "sync") in paths
        assert ("b", "sync") in paths

    def test_aggregates_ordered_by_total_then_path(self, simple_trace):
        analysis = analyze_records(simple_trace)
        keys = [(-st.total, st.path) for st in analysis.aggregates]
        assert keys == sorted(keys)

    def test_determinism_across_record_order(self, simple_trace):
        shuffled = list(reversed(simple_trace))
        a = analyze_records(simple_trace).to_dict()
        b = analyze_records(shuffled).to_dict()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


class TestCriticalPath:
    def test_heaviest_chain_from_longest_root(self, simple_trace):
        analysis = analyze_records(simple_trace)
        names = [hop["name"] for hop in analysis.critical_path]
        assert names == ["root", "train", "train.step"]

    def test_longest_root_wins(self):
        records = [
            _span(1, "short", 0.0, 1.0),
            _span(2, "long", 2.0, 9.0),
            _span(3, "inner", 3.0, 8.0, parent_id=2),
        ]
        names = [h["name"] for h in analyze_records(records).critical_path]
        assert names == ["long", "inner"]


class TestInputsAndSchema:
    def test_empty_trace_raises(self):
        with pytest.raises(ValueError, match="no spans"):
            analyze_records([])

    def test_metric_records_ignored(self, simple_trace):
        records = simple_trace + [{"type": "metric", "name": "x", "value": 1}]
        assert analyze_records(records).spans == len(simple_trace)

    def test_to_dict_schema(self, simple_trace):
        doc = analyze_records(simple_trace).to_dict(top=2)
        assert doc["schema_version"] == ANALYSIS_SCHEMA_VERSION
        assert doc["kind"] == "trace_analysis"
        assert len(doc["hotspots"]) == 2
        assert doc["coverage"] == pytest.approx(1.0)
        json.dumps(doc)  # must be JSON-serializable as-is

    def test_hotspots_ranked_by_self_time(self, simple_trace):
        hotspots = analyze_records(simple_trace).hotspots(top=10)
        selfs = [st.self_time for st in hotspots]
        assert selfs == sorted(selfs, reverse=True)

    def test_analyze_file_round_trip(self, simple_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "\n".join(json.dumps(r) for r in simple_trace) + "\n", encoding="utf-8"
        )
        analysis = analyze_file(path)
        assert analysis.spans == len(simple_trace)
        assert analysis.coverage() == pytest.approx(1.0)


class TestLiveTrace:
    def test_real_tracer_records_conserve_self_time(self):
        with tracing(enabled=True) as tracer:
            tracer.reset()
            with span("outer"):
                with span("inner"):
                    pass
                with span("inner"):
                    pass
            records = tracer.records()
            tracer.reset()
        analysis = analyze_records(records)
        assert analysis.spans == 3
        assert analysis.self_total == pytest.approx(analysis.roots_total, rel=1e-9)

    def test_render_nests_children_under_parent(self, simple_trace):
        text = render_analysis(analyze_records(simple_trace))
        lines = text.split("\n")
        root_idx = next(i for i, l in enumerate(lines) if l.startswith("root"))
        assert lines[root_idx + 1].startswith("  train")  # heavier child first
        assert lines[root_idx + 2].startswith("    train.step")
        assert lines[root_idx + 3].startswith("  load")
        assert "critical path" in text
        assert "hotspots" in text
