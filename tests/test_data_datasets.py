"""Unit tests for the Table I workload factories."""

import pytest

from repro.data import (
    criteo_kaggle_like,
    criteo_terabyte_like,
    dataset_by_name,
    taobao_like,
)
from repro.data.datasets import SCALE_FACTORS


class TestPaperGeometry:
    """The 'paper' scale must reproduce Table I's numbers."""

    def test_kaggle_table_i(self):
        s = criteo_kaggle_like("paper")
        assert s.num_dense == 13
        assert s.num_sparse == 26
        assert all(t.dim == 16 for t in s.tables)
        assert s.num_samples == 45_000_000
        # Table I: ~2 GB of embeddings, largest table 10.1M x 16.
        assert 1.8e9 < s.total_embedding_bytes < 2.4e9
        assert max(t.num_rows for t in s.tables) == 10_131_227

    def test_terabyte_table_i(self):
        s = criteo_terabyte_like("paper")
        assert s.num_dense == 13
        assert s.num_sparse == 26
        assert all(t.dim == 64 for t in s.tables)
        assert s.num_samples == 80_000_000
        # Table I: ~61 GB of embeddings, largest table 73.1M x 64.
        assert 55e9 < s.total_embedding_bytes < 67e9
        assert max(t.num_rows for t in s.tables) == 73_100_000

    def test_taobao_table_i(self):
        s = taobao_like("paper")
        assert s.num_dense == 3
        assert s.num_sparse == 3
        assert all(t.dim == 16 for t in s.tables)
        assert s.num_samples == 10_000_000
        # Table I: ~0.3 GB of embeddings, largest table 4.1M x 16.
        assert 0.25e9 < s.total_embedding_bytes < 0.40e9
        assert max(t.num_rows for t in s.tables) == 4_162_024

    def test_taobao_sequence_multiplicity(self):
        s = taobao_like("paper")
        mults = sorted(t.multiplicity for t in s.tables)
        assert mults == [1, 21, 21]

    def test_embedding_sizes_ordering(self):
        # Fig 2's ordering: Taobao < Kaggle < Terabyte.
        taobao = taobao_like("paper").total_embedding_bytes
        kaggle = criteo_kaggle_like("paper").total_embedding_bytes
        terabyte = criteo_terabyte_like("paper").total_embedding_bytes
        assert taobao < kaggle < terabyte


class TestScaling:
    @pytest.mark.parametrize("scale", sorted(SCALE_FACTORS))
    def test_all_named_scales_build(self, scale):
        for factory in (criteo_kaggle_like, criteo_terabyte_like, taobao_like):
            schema = factory(scale)
            assert schema.num_sparse in (3, 26)

    def test_small_scale_shrinks_rows(self):
        paper = criteo_kaggle_like("paper")
        small = criteo_kaggle_like("small")
        assert small.total_embedding_bytes < paper.total_embedding_bytes / 500

    def test_minimum_sample_floor(self):
        tiny = taobao_like("tiny")
        assert tiny.num_samples >= 2000

    def test_numeric_scale(self):
        s = criteo_kaggle_like(0.0001)
        assert max(t.num_rows for t in s.tables) == pytest.approx(1013, rel=0.01)

    def test_rejects_unknown_scale(self):
        with pytest.raises(ValueError):
            criteo_kaggle_like("huge")

    def test_rejects_non_positive_scale(self):
        with pytest.raises(ValueError):
            criteo_kaggle_like(0.0)

    def test_exponents_preserved_across_scales(self):
        paper = criteo_terabyte_like("paper")
        small = criteo_terabyte_like("small")
        big_paper = max(paper.tables, key=lambda t: t.num_rows)
        big_small = max(small.tables, key=lambda t: t.num_rows)
        assert big_paper.zipf_exponent == big_small.zipf_exponent


class TestLookup:
    @pytest.mark.parametrize(
        "name", ["criteo-kaggle", "criteo-terabyte", "taobao"]
    )
    def test_by_name(self, name):
        assert dataset_by_name(name, "tiny").name.startswith(name)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            dataset_by_name("movielens")
