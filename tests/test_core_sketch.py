"""Tests for the Count-Min Sketch and sketch-based profiling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import EmbeddingClassifier, EmbeddingLogger
from repro.core.sketch import CountMinSketch, SketchLogger


class TestCountMinSketch:
    def test_never_undercounts(self, rng):
        sketch = CountMinSketch(width=64, depth=4, seed=1)
        ids = rng.integers(0, 1000, size=5000)
        sketch.add(ids)
        truth = np.bincount(ids, minlength=1000)
        estimates = sketch.query(np.arange(1000))
        assert np.all(estimates >= truth)

    def test_exact_when_wide_enough(self):
        sketch = CountMinSketch(width=4096, depth=5, seed=0)
        ids = np.repeat(np.arange(10), [1, 2, 3, 4, 5, 6, 7, 8, 9, 10])
        sketch.add(ids)
        np.testing.assert_array_equal(
            sketch.query(np.arange(10)), np.arange(1, 11)
        )

    def test_error_bound_holds(self, rng):
        epsilon, delta = 0.01, 1e-3
        sketch = CountMinSketch.from_error_bounds(epsilon, delta, seed=3)
        ids = rng.integers(0, 50_000, size=100_000)
        sketch.add(ids)
        truth = np.bincount(ids, minlength=50_000)
        estimates = sketch.query(np.arange(50_000))
        overcount = estimates - truth
        # One-sided bound: overcount <= eps * total (allow rare outliers
        # per the delta guarantee).
        violations = np.mean(overcount > epsilon * sketch.total)
        assert violations <= delta * 10  # generous slack on a single trial

    def test_total_tracks_stream(self):
        sketch = CountMinSketch(width=16, depth=2)
        sketch.add(np.arange(5))
        sketch.add(np.arange(3))
        assert sketch.total == 8

    def test_empty_add_query(self):
        sketch = CountMinSketch(width=16, depth=2)
        sketch.add(np.array([], dtype=np.int64))
        assert sketch.total == 0
        assert sketch.query(np.array([], dtype=np.int64)).size == 0

    def test_deterministic_given_seed(self, rng):
        ids = rng.integers(0, 100, size=1000)
        a = CountMinSketch(width=32, depth=3, seed=9)
        b = CountMinSketch(width=32, depth=3, seed=9)
        a.add(ids)
        b.add(ids)
        np.testing.assert_array_equal(a.table, b.table)

    def test_from_error_bounds_sizing(self):
        sketch = CountMinSketch.from_error_bounds(0.001, 0.01)
        assert sketch.width == int(np.ceil(np.e / 0.001))
        assert sketch.depth == int(np.ceil(np.log(100)))

    @pytest.mark.parametrize("kwargs", [dict(width=0, depth=1), dict(width=1, depth=0)])
    def test_bad_geometry(self, kwargs):
        with pytest.raises(ValueError):
            CountMinSketch(**kwargs)

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            CountMinSketch.from_error_bounds(0.0, 0.5)
        with pytest.raises(ValueError):
            CountMinSketch.from_error_bounds(0.1, 1.5)

    @given(
        ids=st.lists(st.integers(0, 500), min_size=1, max_size=300),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_one_sided_error(self, ids, seed):
        sketch = CountMinSketch(width=128, depth=4, seed=seed)
        ids = np.array(ids, dtype=np.int64)
        sketch.add(ids)
        truth = np.bincount(ids, minlength=501)
        estimates = sketch.query(np.arange(501))
        assert np.all(estimates >= truth)
        assert estimates.sum() >= truth.sum()


class TestSketchLogger:
    def test_profile_matches_exact_on_hot_rows(self, tiny_log, tiny_fae_config):
        exact = EmbeddingLogger(tiny_fae_config).profile(
            tiny_log, np.arange(len(tiny_log))
        )
        sketched = SketchLogger(tiny_fae_config, epsilon=1e-4).profile(
            tiny_log, np.arange(len(tiny_log))
        )
        for name, table in exact.tables.items():
            estimate = sketched.tables[name].counts
            assert np.all(estimate >= table.counts)
            # At epsilon=1e-4 and ~4-8K accesses, estimates are exact.
            top = np.argsort(table.counts)[-20:]
            np.testing.assert_array_equal(estimate[top], table.counts[top])

    def test_same_hot_classification_as_exact(self, tiny_log, tiny_fae_config):
        """The sketch must select the same hot rows as exact counting."""
        exact_profile = EmbeddingLogger(tiny_fae_config).profile(
            tiny_log, np.arange(len(tiny_log))
        )
        sketch_profile = SketchLogger(tiny_fae_config, epsilon=1e-4).profile(
            tiny_log, np.arange(len(tiny_log))
        )
        classifier = EmbeddingClassifier(tiny_fae_config)
        threshold = 1e-3
        exact_bags = classifier.classify(exact_profile, threshold)
        sketch_bags = classifier.classify(sketch_profile, threshold)
        for name in exact_bags:
            exact_ids = set(exact_bags[name].hot_ids.tolist())
            sketch_ids = set(sketch_bags[name].hot_ids.tolist())
            # One-sided error -> sketch hot set is a superset.
            assert exact_ids <= sketch_ids
            # And not a much larger one at this epsilon.
            assert len(sketch_ids) <= len(exact_ids) * 1.1 + 2

    def test_sketch_bytes_reported(self, tiny_log, tiny_fae_config):
        logger = SketchLogger(tiny_fae_config, epsilon=1e-3)
        logger.profile(tiny_log, np.arange(100))
        assert logger.last_sketch_bytes > 0

    def test_empty_sample_rejected(self, tiny_log, tiny_fae_config):
        with pytest.raises(ValueError):
            SketchLogger(tiny_fae_config).profile(tiny_log, np.array([], dtype=np.int64))
