"""Tests for the data-integrity guardrails: ingest validation and the
quarantine ledger, the training-time numeric guard (NaN/loss-spike
rollback), seeded data-corruption chaos, and the serving circuit
breaker's state machine."""

import json
import math
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import fae_preprocess
from repro.data import (
    ClickLog,
    SyntheticClickLog,
    SyntheticConfig,
    ValidatingChunkSource,
    as_chunk_source,
    train_test_split,
    validated_log,
)
from repro.dist import DistributedFAETrainer
from repro.models.dlrm import DLRM, DLRMConfig
from repro.resilience import (
    CircuitBreaker,
    FaultPlan,
    GuardAbort,
    GuardError,
    IngestPolicy,
    IngestValidationError,
    LossSpikeError,
    NumericGuard,
    NumericGuardConfig,
    QuarantineLedger,
    validate_chunk,
)
from repro.train import FAETrainer


def small_dlrm(schema, seed=3):
    return DLRM(schema, DLRMConfig("4-8", "8-1", seed=seed))


# ----------------------------------------------------------------------
# Policy and config parsing
# ----------------------------------------------------------------------


class TestIngestPolicy:
    def test_bare_name_applies_to_all_fields(self):
        policy = IngestPolicy.parse("quarantine")
        assert (policy.sparse, policy.dense, policy.labels) == ("quarantine",) * 3
        assert policy.quarantines

    def test_per_field_spec(self):
        policy = IngestPolicy.parse("sparse=quarantine,dense=clamp")
        assert policy.sparse == "quarantine"
        assert policy.dense == "clamp"
        assert policy.labels == "raise"
        assert policy.quarantines

    def test_default_never_quarantines(self):
        assert not IngestPolicy().quarantines

    @pytest.mark.parametrize("spec", ["bogus", "sparse=bogus", "unknown=clamp", "sparse"])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            IngestPolicy.parse(spec)


class TestNumericGuardConfig:
    def test_parse_full_spec(self):
        cfg = NumericGuardConfig.parse(
            "spike=3.5,ema=0.8,warmup=4,rollbacks=5,backoff=0.25,skips=9"
        )
        assert cfg.spike_factor == 3.5
        assert cfg.ema_beta == 0.8
        assert cfg.warmup_steps == 4
        assert cfg.max_rollbacks == 5
        assert cfg.lr_backoff == 0.25
        assert cfg.max_skipped_steps == 9

    @pytest.mark.parametrize("spec", ["", "default"])
    def test_empty_spec_is_defaults(self, spec):
        assert NumericGuardConfig.parse(spec) == NumericGuardConfig()

    @pytest.mark.parametrize("spec", ["bogus=1", "spike", "warmup=x"])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            NumericGuardConfig.parse(spec)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ema_beta": 1.0},
            {"spike_factor": 1.0},
            {"warmup_steps": 0},
            {"max_rollbacks": -1},
            {"lr_backoff": 0.0},
            {"max_skipped_steps": 0},
        ],
    )
    def test_invalid_thresholds_rejected(self, kwargs):
        with pytest.raises(ValueError):
            NumericGuardConfig(**kwargs)


# ----------------------------------------------------------------------
# Quarantine ledger
# ----------------------------------------------------------------------


class TestQuarantineLedger:
    def test_records_dedup_by_index(self, tmp_path):
        ledger = QuarantineLedger(tmp_path)
        ledger.record(5, ["dense.nonfinite"])
        ledger.record(5, ["label.invalid"])  # second sighting ignored
        ledger.record(2, ["label.invalid"], {"label.invalid": 3.0})
        assert len(ledger) == 2
        assert ledger.indices == [2, 5]

    def test_flush_is_sorted_and_reloadable(self, tmp_path):
        ledger = QuarantineLedger(tmp_path)
        ledger.record(9, ["b", "a"])
        ledger.record(1, ["c"])
        path = ledger.flush()
        records = QuarantineLedger.load(path)
        assert [r["index"] for r in records] == [1, 9]
        assert records[1]["reasons"] == ["a", "b"]  # reasons sorted

    def test_flush_is_idempotent_bytes(self, tmp_path):
        ledger = QuarantineLedger(tmp_path)
        ledger.record(3, ["dense.nonfinite"])
        first = ledger.flush().read_bytes()
        ledger.record(3, ["dense.nonfinite"])  # re-observed on a second pass
        assert ledger.flush().read_bytes() == first

    def test_load_names_corrupt_line(self, tmp_path):
        path = tmp_path / "quarantine.jsonl"
        path.write_text('{"index": 1, "reasons": []}\nnot json\n')
        with pytest.raises(GuardError, match=r":2"):
            QuarantineLedger.load(path)


# ----------------------------------------------------------------------
# Chunk validation
# ----------------------------------------------------------------------


def _toy_log(schema, n=20, seed=0):
    return SyntheticClickLog(schema, SyntheticConfig(num_samples=n, seed=seed))


class TestValidateChunk:
    def test_clean_chunk_returned_unchanged(self, tiny_schema):
        chunk = _toy_log(tiny_schema)
        clean, dropped = validate_chunk(chunk, 0, IngestPolicy.parse("quarantine"))
        assert dropped == 0
        assert clean is chunk  # identity: no copies on the clean path

    def test_raise_policy_names_index_and_reason(self, tiny_schema):
        chunk = _toy_log(tiny_schema)
        chunk.dense[4, 0] = np.nan
        with pytest.raises(IngestValidationError) as excinfo:
            validate_chunk(chunk, 100, IngestPolicy())
        assert excinfo.value.index == 104
        assert excinfo.value.reason == "dense.nonfinite"

    def test_raise_policy_names_oov_id(self, tiny_schema):
        chunk = _toy_log(tiny_schema)
        chunk.sparse["table_00"][3, 0] = 999_999
        with pytest.raises(IngestValidationError) as excinfo:
            validate_chunk(chunk, 0, IngestPolicy())
        assert excinfo.value.reason == "sparse.table_00.oov"
        assert "999999" in str(excinfo.value)

    def test_clamp_policy_repairs_in_place(self, tiny_schema):
        chunk = _toy_log(tiny_schema)
        chunk.dense[0, 0] = np.inf
        chunk.sparse["table_00"][1, 0] = -5
        chunk.labels[2] = np.nan
        clean, dropped = validate_chunk(chunk, 0, IngestPolicy.parse("clamp"))
        assert dropped == 0
        assert len(clean) == len(chunk)
        assert np.isfinite(clean.dense).all()
        assert clean.sparse["table_00"][1, 0] == 0
        assert clean.labels[2] in (0.0, 1.0)

    def test_quarantine_policy_drops_and_ledgers(self, tiny_schema, tmp_path):
        chunk = _toy_log(tiny_schema)
        chunk.dense[4, 1] = np.nan
        chunk.labels[7] = 3.0
        chunk.sparse["table_01"][9, 0] = 10**6
        ledger = QuarantineLedger(tmp_path)
        clean, dropped = validate_chunk(
            chunk, 50, IngestPolicy.parse("quarantine"), ledger
        )
        assert dropped == 3
        assert len(clean) == len(chunk) - 3
        assert ledger.indices == [54, 57, 59]
        reasons = {r["index"]: r["reasons"] for r in (ledger._records[i] for i in ledger.indices)}
        assert reasons[54] == ["dense.nonfinite"]
        assert reasons[57] == ["label.invalid"]
        assert reasons[59] == ["sparse.table_01.oov"]

    def test_mixed_policies(self, tiny_schema, tmp_path):
        chunk = _toy_log(tiny_schema)
        chunk.dense[0, 0] = np.nan  # clamped
        chunk.sparse["table_00"][1, 0] = -1  # quarantined
        ledger = QuarantineLedger(tmp_path)
        clean, dropped = validate_chunk(
            chunk, 0, IngestPolicy.parse("sparse=quarantine,dense=clamp"), ledger
        )
        assert dropped == 1
        assert ledger.indices == [1]
        assert np.isfinite(clean.dense).all()


# ----------------------------------------------------------------------
# Validating chunk source: chunk-size invariance (pinned)
# ----------------------------------------------------------------------


@pytest.fixture()
def dirty_log(tiny_schema):
    log = _toy_log(tiny_schema, n=2000, seed=13)
    plan = FaultPlan(seed=5, ingest_corruption_rate=0.01, max_ingest_corruptions=64)
    injected = plan.corrupt_ingest(log)
    assert injected  # the test premise: some rows are poisoned
    return log, injected


class TestValidatingChunkSource:
    def test_requires_ledger_for_quarantine(self, tiny_log):
        with pytest.raises(ValueError):
            ValidatingChunkSource(tiny_log, IngestPolicy.parse("quarantine"))

    def test_ledger_identifies_exactly_the_injected_rows(self, dirty_log, tmp_path):
        log, injected = dirty_log
        ledger = QuarantineLedger(tmp_path)
        clean = validated_log(log, IngestPolicy.parse("quarantine"), ledger)
        assert ledger.indices == sorted(injected)
        assert len(clean) == len(log) - len(injected)

    def test_decisions_identical_across_chunk_sizes(self, dirty_log, tmp_path):
        """The pinned invariant: clean stream and ledger are
        byte-identical for any chunking of the same source."""
        log, _injected = dirty_log
        policy = IngestPolicy.parse("quarantine")
        outputs = []
        for chunk_size in (128, 333, 5000):
            ledger = QuarantineLedger(tmp_path / f"q{chunk_size}")
            clean = validated_log(log, policy, ledger, chunk_size=chunk_size)
            outputs.append(
                (
                    clean.dense.tobytes(),
                    clean.labels.tobytes(),
                    {n: ids.tobytes() for n, ids in clean.sparse.items()},
                    ledger.path.read_bytes(),
                )
            )
        assert outputs[0] == outputs[1] == outputs[2]

    def test_clean_starts_renumbered_densely(self, dirty_log, tmp_path):
        log, _injected = dirty_log
        source = ValidatingChunkSource(
            as_chunk_source(log, chunk_size=128),
            IngestPolicy.parse("quarantine"),
            QuarantineLedger(tmp_path),
        )
        expected_start = 0
        for start, chunk in source:
            assert start == expected_start
            expected_start += len(chunk)
        assert source.num_samples == expected_start

    def test_validated_log_aborts_when_nothing_survives(self, tiny_schema, tmp_path):
        log = _toy_log(tiny_schema, n=4)
        log.labels[:] = np.nan
        ledger = QuarantineLedger(tmp_path)
        with pytest.raises(GuardAbort) as excinfo:
            validated_log(log, IngestPolicy.parse("quarantine"), ledger)
        assert excinfo.value.guard == "ingest"
        assert str(ledger.path) in excinfo.value.hints()[0]


# ----------------------------------------------------------------------
# ClickLog's constructor-level OOV policy hook (satellite)
# ----------------------------------------------------------------------


class TestClickLogOOVPolicy:
    def _arrays(self, tiny_schema, bad_id):
        log = _toy_log(tiny_schema, n=6)
        sparse = {name: ids.copy() for name, ids in log.sparse.items()}
        sparse["table_00"][3, 0] = bad_id
        return log.dense, sparse, log.labels

    def test_raise_is_the_default(self, tiny_schema):
        dense, sparse, labels = self._arrays(tiny_schema, 10**6)
        with pytest.raises(ValueError, match="out of range"):
            ClickLog(tiny_schema, dense, sparse, labels)

    def test_clamp_clips_into_range(self, tiny_schema):
        dense, sparse, labels = self._arrays(tiny_schema, 10**6)
        log = ClickLog(tiny_schema, dense, sparse, labels, oov_policy="clamp")
        num_rows = tiny_schema.table("table_00").num_rows
        assert log.sparse["table_00"][3, 0] == num_rows - 1
        assert len(log) == 6

    def test_quarantine_drops_and_records(self, tiny_schema):
        dense, sparse, labels = self._arrays(tiny_schema, -9)
        log = ClickLog(tiny_schema, dense, sparse, labels, oov_policy="quarantine")
        assert len(log) == 5
        np.testing.assert_array_equal(log.quarantined_indices, [3])

    def test_unknown_policy_rejected(self, tiny_schema):
        dense, sparse, labels = self._arrays(tiny_schema, 0)
        with pytest.raises(ValueError, match="oov_policy"):
            ClickLog(tiny_schema, dense, sparse, labels, oov_policy="ignore")


# ----------------------------------------------------------------------
# Numeric guard
# ----------------------------------------------------------------------


def _param(grad=None, sparse_values=None):
    sparse = [SimpleNamespace(values=v) for v in (sparse_values or [])]
    return SimpleNamespace(grad=grad, sparse_grads=sparse)


class TestNumericGuard:
    def test_batch_ok_flags_nonfinite(self):
        guard = NumericGuard()
        good = SimpleNamespace(
            dense=np.ones((2, 3)), labels=np.zeros(2, dtype=np.float32)
        )
        bad = SimpleNamespace(
            dense=np.array([[1.0, np.nan]]), labels=np.zeros(1, dtype=np.float32)
        )
        assert guard.batch_ok(good)
        assert not guard.batch_ok(bad)
        assert guard.skipped_batches == 1

    def test_grads_ok_checks_dense_and_sparse(self):
        guard = NumericGuard()
        assert guard.grads_ok([_param(grad=np.ones(3))])
        assert not guard.grads_ok([_param(grad=np.array([np.inf]))])
        assert not guard.grads_ok(
            [_param(sparse_values=[np.array([[np.nan]])])]
        )
        assert guard.skipped_steps == 2

    def test_persistent_grad_skips_escalate_to_rollback(self):
        guard = NumericGuard(NumericGuardConfig(max_skipped_steps=2))
        bad = [_param(grad=np.array([np.nan]))]
        assert not guard.grads_ok(bad, iteration=1)
        assert not guard.grads_ok(bad, iteration=2)
        with pytest.raises(LossSpikeError, match="poisoned"):
            guard.grads_ok(bad, iteration=3)

    def test_rollback_resets_skip_budget(self):
        guard = NumericGuard(NumericGuardConfig(max_skipped_steps=1, max_rollbacks=5))
        bad = [_param(grad=np.array([np.nan]))]
        assert not guard.grads_ok(bad)
        guard.note_rollback("test")
        assert not guard.grads_ok(bad)  # budget re-armed, no raise

    def test_nonfinite_loss_raises(self):
        guard = NumericGuard()
        with pytest.raises(LossSpikeError):
            guard.check_loss(float("nan"), iteration=3)
        with pytest.raises(LossSpikeError):
            guard.check_eval_loss(float("inf"), iteration=3)

    def test_spike_detection_after_warmup(self):
        guard = NumericGuard(NumericGuardConfig(warmup_steps=3, spike_factor=4.0))
        for i in range(5):
            guard.check_loss(0.5, iteration=i)
        with pytest.raises(LossSpikeError, match="spike"):
            guard.check_loss(10.0, iteration=5)

    def test_no_spike_detection_during_warmup(self):
        guard = NumericGuard(NumericGuardConfig(warmup_steps=10))
        guard.check_loss(0.5, iteration=0)
        guard.check_loss(100.0, iteration=1)  # noisy early loss tolerated

    def test_state_ok_rejects_nonfinite_snapshot(self):
        guard = NumericGuard()
        assert guard.state_ok({"w": np.ones(3)})
        assert not guard.state_ok({"w": np.array([1.0, np.nan])})
        assert guard.rejected_checkpoints == 1

    def test_rollback_budget_exhaustion_aborts_with_locations(self, tmp_path):
        guard = NumericGuard(NumericGuardConfig(max_rollbacks=1))
        guard.note_rollback("first")
        with pytest.raises(GuardAbort) as excinfo:
            guard.note_rollback(
                "second", checkpoint_dir=tmp_path, ledger_path=tmp_path / "q.jsonl"
            )
        assert excinfo.value.guard == "numeric"
        hints = "\n".join(excinfo.value.hints())
        assert str(tmp_path) in hints

    def test_snapshot_summarizes_activity(self):
        guard = NumericGuard()
        guard.check_loss(0.7, iteration=0)
        snap = guard.snapshot()
        assert snap["rollbacks"] == 0
        assert snap["loss_ema"] == pytest.approx(0.7)


# ----------------------------------------------------------------------
# Circuit breaker state machine
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def make(self, **kw):
        kw.setdefault("window", 8)
        kw.setdefault("failure_threshold", 0.5)
        kw.setdefault("min_requests", 4)
        kw.setdefault("cooldown", 3)
        return CircuitBreaker(**kw)

    def test_stays_closed_below_min_requests(self):
        breaker = self.make()
        for _ in range(3):
            breaker.record(success=False)
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_trips_at_threshold(self):
        breaker = self.make()
        for _ in range(4):
            breaker.record(success=False)
        assert breaker.state == "open"
        assert breaker.trips == 1
        assert not breaker.allow()

    def test_cooldown_then_half_open_probe(self):
        breaker = self.make()
        for _ in range(4):
            breaker.record(success=False)
        admitted = [breaker.allow() for _ in range(4)]
        assert admitted == [False, False, False, True]  # cooldown=3, then probe
        assert breaker.state == "half_open"
        assert breaker.shed_requests == 3

    def test_probe_success_closes_and_clears_window(self):
        breaker = self.make()
        for _ in range(4):
            breaker.record(success=False)
        while not breaker.allow():
            pass
        breaker.record(success=True)
        assert breaker.state == "closed"
        assert breaker.failure_rate() == 0.0

    def test_probe_failure_reopens(self):
        breaker = self.make()
        for _ in range(4):
            breaker.record(success=False)
        while not breaker.allow():
            pass
        breaker.record(success=False)
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_rolling_window_forgets_old_failures(self):
        breaker = self.make(window=4, min_requests=4, failure_threshold=1.0)
        for _ in range(3):
            breaker.record(success=False)
        for _ in range(6):
            breaker.record(success=True)
        assert breaker.state == "closed"
        assert breaker.failure_rate() == 0.0

    def test_health_snapshot(self):
        breaker = self.make()
        breaker.record(success=False)
        health = breaker.health()
        assert health["state"] == "closed"
        assert health["failure_rate"] == 1.0
        assert health["window_size"] == 1
        json.dumps(health)  # must be JSON-serializable

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(window=0)
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=-1)


# ----------------------------------------------------------------------
# Seeded data-corruption faults
# ----------------------------------------------------------------------


class TestCorruptionFaults:
    def test_ingest_corruption_is_seed_deterministic(self, tiny_schema):
        kinds = []
        for _ in range(2):
            log = _toy_log(tiny_schema, n=500, seed=2)
            plan = FaultPlan(seed=9, ingest_corruption_rate=0.02)
            kinds.append(plan.corrupt_ingest(log))
        assert kinds[0] == kinds[1]
        assert kinds[0]

    def test_ingest_corruption_capped(self, tiny_schema):
        log = _toy_log(tiny_schema, n=1000, seed=2)
        plan = FaultPlan(seed=9, ingest_corruption_rate=0.5, max_ingest_corruptions=5)
        assert len(plan.corrupt_ingest(log)) == 5

    def test_batch_corruption_copies_not_mutates(self, tiny_schema):
        log = _toy_log(tiny_schema, n=64, seed=2)
        from repro.data.loader import batch_from_log

        batch = batch_from_log(log, np.arange(32))
        original = batch.dense.copy()
        plan = FaultPlan(seed=1, batch_corruption_rate=0.999, max_batch_corruptions=1)
        poisoned = plan.maybe_corrupt_batch(batch)
        assert not np.isfinite(poisoned.dense).all() or poisoned is batch
        np.testing.assert_array_equal(batch.dense, original)  # source intact

    def test_corrupt_row_nan_and_bitflip(self):
        matrix = np.ones((4, 3), dtype=np.float32)
        FaultPlan(seed=0, corruption_mode="nan").corrupt_row(matrix, row=1)
        assert np.isnan(matrix[1]).all()
        matrix = np.ones((4, 3), dtype=np.float32)
        FaultPlan(seed=0, corruption_mode="bitflip").corrupt_row(matrix, row=2)
        assert (np.abs(matrix[2]) > 1e6).all()  # exponent bit flipped

    def test_fire_once_semantics(self):
        plan = FaultPlan(seed=0, gradient_corruption_at=3, hot_row_corruption_at=5)
        assert not plan.should_corrupt_gradient(2)
        assert plan.should_corrupt_gradient(3)
        assert not plan.should_corrupt_gradient(4)
        assert plan.should_corrupt_hot_row(9)
        assert not plan.should_corrupt_hot_row(9)

    def test_fired_state_survives_roundtrip(self):
        plan = FaultPlan(seed=0, gradient_corruption_at=1, batch_corruption_rate=0.1)
        assert plan.should_corrupt_gradient(1)
        state = plan.state_dict()
        fresh = FaultPlan(seed=0, gradient_corruption_at=1, batch_corruption_rate=0.1)
        fresh.load_state_dict(state)
        assert not fresh.should_corrupt_gradient(99)  # already fired

    def test_parse_corruption_keys(self):
        plan = FaultPlan.parse(
            "seed=3,ingest=0.01,max_ingest=9,bad_batch=0.05,max_bad_batch=2,"
            "bad_grad=7,bad_row=11,corrupt=bitflip"
        )
        assert plan.ingest_corruption_rate == 0.01
        assert plan.max_ingest_corruptions == 9
        assert plan.batch_corruption_rate == 0.05
        assert plan.max_batch_corruptions == 2
        assert plan.gradient_corruption_at == 7
        assert plan.hot_row_corruption_at == 11
        assert plan.corruption_mode == "bitflip"

    def test_invalid_corruption_mode_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(corruption_mode="scramble")


# ----------------------------------------------------------------------
# End-to-end chaos proof: guarded training survives what unguarded
# training does not, and lands near the clean run.
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def guard_setup(request):
    tiny_log = request.getfixturevalue("tiny_log")
    config = request.getfixturevalue("tiny_fae_config")
    train, test = train_test_split(tiny_log, 0.2, seed=4)
    plan = fae_preprocess(train, config, batch_size=64, drop_last=True)
    return tiny_log.schema, train, test, plan


@pytest.fixture(scope="module")
def clean_loss(guard_setup):
    schema, train, test, plan = guard_setup
    result = FAETrainer(small_dlrm(schema, seed=21), plan).train(train, test, epochs=1)
    return result.history.points[-1].test_loss


class TestGuardedTraining:
    def _guards(self):
        return NumericGuard(
            NumericGuardConfig(max_rollbacks=3, max_skipped_steps=4, warmup_steps=4)
        )

    def test_bitflip_hot_row_rolls_back_and_converges(self, guard_setup, clean_loss):
        schema, train, test, plan = guard_setup
        fault_plan = FaultPlan(seed=7, hot_row_corruption_at=5, corruption_mode="bitflip")
        trainer = FAETrainer(
            small_dlrm(schema, seed=21), plan, fault_plan=fault_plan, guards=self._guards()
        )
        result = trainer.train(train, test, epochs=1)
        assert result.rollbacks >= 1
        final = result.history.points[-1].test_loss
        assert math.isfinite(final)
        assert abs(final - clean_loss) < 0.15

    def test_nan_hot_row_rolls_back_via_skip_escalation(self, guard_setup, clean_loss):
        # A NaN weight row hides from the loss check (np.where ReLUs map
        # NaN activations to 0 in the forward pass) but keeps producing
        # non-finite gradients; the skip budget must escalate.
        schema, train, test, plan = guard_setup
        fault_plan = FaultPlan(seed=7, hot_row_corruption_at=5, corruption_mode="nan")
        trainer = FAETrainer(
            small_dlrm(schema, seed=21), plan, fault_plan=fault_plan, guards=self._guards()
        )
        result = trainer.train(train, test, epochs=1)
        assert result.rollbacks >= 1
        final = result.history.points[-1].test_loss
        assert math.isfinite(final)
        assert abs(final - clean_loss) < 0.15

    def test_unguarded_run_visibly_diverges(self, guard_setup, clean_loss):
        schema, train, test, plan = guard_setup
        fault_plan = FaultPlan(seed=7, hot_row_corruption_at=5, corruption_mode="nan")
        result = FAETrainer(
            small_dlrm(schema, seed=21), plan, fault_plan=fault_plan
        ).train(train, test, epochs=1)
        final = result.history.points[-1].test_loss
        assert (not math.isfinite(final)) or final > clean_loss + 0.1

    def test_corrupt_batches_skipped_without_rollback(self, guard_setup):
        schema, train, test, plan = guard_setup
        fault_plan = FaultPlan(seed=3, batch_corruption_rate=0.2, max_batch_corruptions=3)
        trainer = FAETrainer(
            small_dlrm(schema, seed=21), plan, fault_plan=fault_plan, guards=self._guards()
        )
        result = trainer.train(train, test, epochs=1)
        assert result.skipped_batches >= 1
        assert result.rollbacks == 0

    def test_rollback_budget_exhaustion_raises_guard_abort(self, guard_setup):
        schema, train, test, plan = guard_setup
        fault_plan = FaultPlan(seed=7, hot_row_corruption_at=5, corruption_mode="bitflip")
        guards = NumericGuard(
            NumericGuardConfig(max_rollbacks=0, max_skipped_steps=2, warmup_steps=4)
        )
        trainer = FAETrainer(
            small_dlrm(schema, seed=21), plan, fault_plan=fault_plan, guards=guards
        )
        with pytest.raises(GuardAbort):
            trainer.train(train, test, epochs=1)

    def test_lr_backs_off_on_rollback(self, guard_setup):
        schema, train, test, plan = guard_setup
        fault_plan = FaultPlan(seed=7, hot_row_corruption_at=5, corruption_mode="bitflip")
        trainer = FAETrainer(
            small_dlrm(schema, seed=21),
            plan,
            lr=0.2,
            fault_plan=fault_plan,
            guards=self._guards(),
        )
        result = trainer.train(train, test, epochs=1)
        assert result.rollbacks >= 1
        assert trainer.lr == pytest.approx(0.2 * 0.5**result.rollbacks)

    def test_distributed_guarded_run_survives_and_stays_bit_equal(
        self, guard_setup, clean_loss
    ):
        schema, train, test, plan = guard_setup
        fault_plan = FaultPlan.parse(
            "seed=7,bad_row=5,corrupt=bitflip,bad_batch=0.05,max_bad_batch=3"
        )
        trainer = DistributedFAETrainer(
            [small_dlrm(schema, seed=21) for _ in range(2)],
            plan,
            fault_plan=fault_plan,
            guards=self._guards(),
        )
        result = trainer.train(train, test, epochs=1)
        assert result.rollbacks >= 1
        assert trainer.max_hot_divergence() == 0.0
        final = result.history.points[-1].test_loss
        assert math.isfinite(final)
        assert abs(final - clean_loss) < 0.2

    def test_guarded_clean_run_matches_unguarded(self, guard_setup, clean_loss):
        # With no faults the guard must be a pure observer.
        schema, train, test, plan = guard_setup
        result = FAETrainer(
            small_dlrm(schema, seed=21), plan, guards=self._guards()
        ).train(train, test, epochs=1)
        assert result.rollbacks == 0
        assert result.history.points[-1].test_loss == pytest.approx(clean_loss)
