"""Streaming preprocess: chunked equivalence, sharded FAE format, trainers.

The refactor's acceptance bar is *byte-identical* output: running the
sample -> profile -> classify -> pack pipeline chunk-by-chunk must
reproduce the whole-log path exactly, for any chunk size, on the same
seed.  These tests pin that, plus the sharded on-disk format's
round-trip, lazy loading, and corruption detection.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.core import (
    Calibrator,
    FAEConfig,
    fae_preprocess,
    fae_preprocess_source,
    load_fae_dataset,
)
from repro.core.fae_format import FAE_MANIFEST, ShardBatchSequence
from repro.data import (
    ClickLog,
    StreamChunkSource,
    SyntheticClickStream,
    UnsizedChunkSource,
    iter_fae_batches,
    train_test_split,
)


def assert_plans_equal(actual, expected):
    """Byte-level equality of everything a plan persists."""
    assert actual.threshold == expected.threshold
    assert np.array_equal(actual.dataset.hot_mask, expected.dataset.hot_mask)
    assert len(actual.dataset.hot_batches) == len(expected.dataset.hot_batches)
    assert len(actual.dataset.cold_batches) == len(expected.dataset.cold_batches)
    for got, want in zip(actual.dataset.hot_batches, expected.dataset.hot_batches):
        assert np.array_equal(got, want)
    for got, want in zip(actual.dataset.cold_batches, expected.dataset.cold_batches):
        assert np.array_equal(got, want)
    for name, bag in expected.bags.items():
        assert np.array_equal(actual.bags[name].hot_ids, bag.hot_ids)


class TestChunkedEquivalence:
    @pytest.mark.parametrize("chunk_size", [37, 500, 4000, 8192])
    def test_byte_identical_to_whole_log(self, tiny_log, tiny_fae_config, tiny_plan, chunk_size):
        chunked = fae_preprocess(
            tiny_log, tiny_fae_config, batch_size=64, chunk_size=chunk_size
        )
        assert_plans_equal(chunked, tiny_plan)

    def test_profile_counts_identical(self, tiny_log, tiny_fae_config, tiny_plan):
        chunked = fae_preprocess(tiny_log, tiny_fae_config, batch_size=64, chunk_size=123)
        base = tiny_plan.calibration.profile
        got = chunked.calibration.profile
        assert got.num_sampled_inputs == base.num_sampled_inputs
        assert set(got.tables) == set(base.tables)
        for name, table in base.tables.items():
            assert np.array_equal(got.tables[name].counts, table.counts)

    def test_stream_source_matches_materialized(self, tiny_schema, tiny_fae_config):
        stream = SyntheticClickStream(tiny_schema, total_samples=2000, chunk_size=256, seed=4)
        streamed = fae_preprocess_source(
            StreamChunkSource(stream), tiny_fae_config, batch_size=64
        )
        chunks = [chunk for _start, chunk in stream]
        materialized = ClickLog(
            schema=tiny_schema,
            dense=np.concatenate([c.dense for c in chunks]),
            sparse={
                name: np.concatenate([c.sparse[name] for c in chunks])
                for name in tiny_schema.table_names
            },
            labels=np.concatenate([c.labels for c in chunks]),
        )
        in_memory = fae_preprocess(materialized, tiny_fae_config, batch_size=64)
        assert_plans_equal(streamed, in_memory)


class TestUnsizedCalibration:
    def test_bernoulli_fallback_for_unknown_length(self, tiny_schema, tiny_fae_config):
        stream = SyntheticClickStream(tiny_schema, total_samples=4000, chunk_size=512, seed=8)
        source = UnsizedChunkSource(tiny_schema, lambda: iter(stream), chunk_size=512)
        output = Calibrator(tiny_fae_config).calibrate_source(source)
        sampled = output.profile.num_sampled_inputs
        # Binomial(4000, 0.2): mean 800, sd ~25 — 6 sigma on both sides.
        assert 650 <= sampled <= 950
        assert output.threshold > 0

    def test_keeps_at_least_one_sample(self, tiny_schema):
        config = FAEConfig(
            gpu_memory_budget=16 * 1024,
            sample_rate=1e-9,
            large_table_min_bytes=1024,
            seed=3,
        )
        stream = SyntheticClickStream(tiny_schema, total_samples=200, chunk_size=100, seed=1)
        source = UnsizedChunkSource(tiny_schema, lambda: iter(stream), chunk_size=100)
        output = Calibrator(config).calibrate_source(source)
        assert output.profile.num_sampled_inputs == 1

    def test_unsized_preprocess_end_to_end(self, tiny_schema, tiny_fae_config):
        stream = SyntheticClickStream(tiny_schema, total_samples=1500, chunk_size=300, seed=6)
        source = UnsizedChunkSource(tiny_schema, lambda: iter(stream), chunk_size=300)
        plan = fae_preprocess_source(source, tiny_fae_config, batch_size=64)
        assert len(plan.dataset.hot_mask) == 1500
        total = sum(len(b) for b in plan.dataset.hot_batches)
        total += sum(len(b) for b in plan.dataset.cold_batches)
        assert total == 1500


class TestShardedRoundTrip:
    @pytest.fixture()
    def sharded_dir(self, tiny_plan, tmp_path):
        directory = tmp_path / "plan_shards"
        tiny_plan.save(directory, shard_size=3)
        return directory

    def test_round_trip_equals_flat(self, tiny_plan, sharded_dir):
        dataset, bags, threshold = load_fae_dataset(sharded_dir)
        assert threshold == tiny_plan.threshold
        assert dataset.batch_size == tiny_plan.dataset.batch_size
        assert np.array_equal(dataset.hot_mask, tiny_plan.dataset.hot_mask)
        for got, want in zip(dataset.hot_batches, tiny_plan.dataset.hot_batches):
            assert np.array_equal(got, want)
        for got, want in zip(dataset.cold_batches, tiny_plan.dataset.cold_batches):
            assert np.array_equal(got, want)
        for name, bag in tiny_plan.bags.items():
            assert np.array_equal(bags[name].hot_ids, bag.hot_ids)
            assert bags[name].num_rows == bag.num_rows
            assert bags[name].whole_table == bag.whole_table

    def test_accepts_manifest_path(self, sharded_dir):
        dataset, _bags, _threshold = load_fae_dataset(sharded_dir / FAE_MANIFEST)
        assert len(dataset.hot_batches) > 0

    def test_lazy_sequence_surface(self, tiny_plan, sharded_dir):
        dataset, _bags, _threshold = load_fae_dataset(sharded_dir)
        hot = dataset.hot_batches
        assert isinstance(hot, ShardBatchSequence)
        n = len(hot)
        assert n == len(tiny_plan.dataset.hot_batches)
        assert np.array_equal(hot[0], tiny_plan.dataset.hot_batches[0])
        assert np.array_equal(hot[-1], tiny_plan.dataset.hot_batches[n - 1])
        sliced = hot[1:4]
        assert isinstance(sliced, list)
        for got, want in zip(sliced, tiny_plan.dataset.hot_batches[1:4]):
            assert np.array_equal(got, want)
        with pytest.raises(IndexError):
            hot[n]
        assert len(hot.materialize()) == n

    def test_tampered_shard_fails_checksum(self, sharded_dir):
        shard = sharded_dir / "shard-000000.npz"
        data = bytearray(shard.read_bytes())
        data[len(data) // 2] ^= 0xFF
        shard.write_bytes(bytes(data))
        dataset, _bags, _threshold = load_fae_dataset(sharded_dir)
        with pytest.raises(RuntimeError, match="shard-000000"):
            list(dataset.hot_batches)

    def test_missing_shard_names_file(self, sharded_dir):
        (sharded_dir / "shard-000000.npz").unlink()
        dataset, _bags, _threshold = load_fae_dataset(sharded_dir)
        with pytest.raises(RuntimeError, match="shard-000000"):
            dataset.hot_batches[0]

    def test_corrupt_manifest_names_file(self, sharded_dir):
        (sharded_dir / FAE_MANIFEST).write_text("{oops", encoding="utf-8")
        with pytest.raises(RuntimeError, match=FAE_MANIFEST):
            load_fae_dataset(sharded_dir)

    def test_version_mismatch_raises_value_error(self, sharded_dir):
        manifest_path = sharded_dir / FAE_MANIFEST
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["format_version"] = 999
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(ValueError, match="999"):
            load_fae_dataset(sharded_dir)

    def test_shard_count_mismatch_detected(self, sharded_dir):
        manifest_path = sharded_dir / FAE_MANIFEST
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["num_hot_batches"] += 1
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(RuntimeError, match="disagree"):
            load_fae_dataset(sharded_dir)


class TestShardBackedTraining:
    def test_iter_fae_batches_over_shards(self, tiny_log, tiny_plan, tmp_path):
        directory = tmp_path / "plan_shards"
        tiny_plan.save(directory, shard_size=4)
        dataset, _bags, _threshold = load_fae_dataset(directory)
        batches = list(iter_fae_batches(tiny_log, dataset, "hot", hot=True))
        assert len(batches) == len(tiny_plan.dataset.hot_batches)
        assert all(b.hot for b in batches)
        windowed = list(iter_fae_batches(tiny_log, dataset, "cold", start=1, count=2))
        assert len(windowed) == min(2, max(0, len(dataset.cold_batches) - 1))

    def test_fae_trainer_on_shard_backed_plan(self, tiny_log, tiny_fae_config, tmp_path):
        from repro.models.dlrm import DLRM, DLRMConfig
        from repro.train import FAETrainer

        train, test = train_test_split(tiny_log, 0.2, seed=7)
        plan = fae_preprocess(train, tiny_fae_config, batch_size=64)
        directory = tmp_path / "plan_shards"
        plan.save(directory, shard_size=5)
        dataset, _bags, _threshold = load_fae_dataset(directory)
        shard_backed = dataclasses.replace(plan, dataset=dataset)

        model = DLRM(train.schema, DLRMConfig("4-8", "8-1", seed=1))
        result = FAETrainer(model, shard_backed, lr=0.2).train(train, test, epochs=1)
        assert 0.0 <= result.final_test_accuracy <= 1.0


class TestPreprocessCLI:
    def test_chunked_sharded_preprocess(self, tmp_path):
        from repro.cli import main

        out_dir = tmp_path / "plan_shards"
        code = main(
            [
                "preprocess",
                "criteo-kaggle",
                "--samples",
                "4000",
                "--batch-size",
                "128",
                "--chunk-size",
                "1000",
                "--shard-size",
                "8",
                "--out",
                str(out_dir),
            ]
        )
        assert code == 0
        dataset, _bags, threshold = load_fae_dataset(out_dir)
        total = sum(len(b) for b in dataset.hot_batches)
        total += sum(len(b) for b in dataset.cold_batches)
        assert total == 4000
        assert threshold > 0

    def test_stream_flag(self, tmp_path):
        from repro.cli import main

        out_file = tmp_path / "plan.npz"
        code = main(
            [
                "preprocess",
                "criteo-kaggle",
                "--samples",
                "3000",
                "--batch-size",
                "128",
                "--stream",
                "--chunk-size",
                "800",
                "--out",
                str(out_file),
            ]
        )
        assert code == 0
        dataset, _bags, _threshold = load_fae_dataset(out_file)
        total = sum(len(b) for b in dataset.hot_batches)
        total += sum(len(b) for b in dataset.cold_batches)
        assert total == 3000
