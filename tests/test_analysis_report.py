"""Tests for the consolidated report generator."""

import pytest

from repro.analysis import generate_report, write_report


@pytest.fixture()
def artifact_dir(tmp_path):
    out = tmp_path / "out"
    out.mkdir()
    (out / "fig02_hot_sizes.txt").write_text("fig two body\n")
    (out / "fig10_randem.txt").write_text("fig ten body\n")
    (out / "tab4_train_time.txt").write_text("table four body\n")
    (out / "x1_nvopt.txt").write_text("nvopt body\n")
    (out / "abl_scheduler.txt").write_text("ablation body\n")
    (out / "misc_notes.txt").write_text("misc body\n")
    return out


class TestGenerateReport:
    def test_sections_ordered(self, artifact_dir):
        report = generate_report(artifact_dir)
        fig_pos = report.index("## Figures")
        tab_pos = report.index("## Tables")
        claims_pos = report.index("## Text claims")
        abl_pos = report.index("## Ablations")
        assert fig_pos < tab_pos < claims_pos < abl_pos

    def test_numeric_artifact_ordering(self, artifact_dir):
        report = generate_report(artifact_dir)
        assert report.index("fig02_hot_sizes") < report.index("fig10_randem")

    def test_bodies_included_verbatim(self, artifact_dir):
        report = generate_report(artifact_dir)
        for body in ("fig two body", "table four body", "nvopt body", "ablation body"):
            assert body in report

    def test_unmatched_artifacts_in_other_section(self, artifact_dir):
        report = generate_report(artifact_dir)
        assert "## Other artifacts" in report
        assert "misc body" in report

    def test_custom_title(self, artifact_dir):
        report = generate_report(artifact_dir, title="My Repro")
        assert report.startswith("# My Repro")

    def test_missing_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            generate_report(tmp_path / "nope")

    def test_empty_dir(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ValueError):
            generate_report(empty)


class TestWriteReport:
    def test_writes_file(self, artifact_dir, tmp_path):
        destination = write_report(artifact_dir, tmp_path / "REPORT.md")
        assert destination.exists()
        assert "## Figures" in destination.read_text()

    def test_cli_command(self, artifact_dir, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "R.md"
        assert main(["report", "--artifacts", str(artifact_dir), "--out", str(out)]) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out
