"""Additional property-based tests: collectives, quantization, packing."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dist import ProcessGroup, ReduceOp
from repro.nn.quantization import (
    dequantize_int8_rows,
    quantize_fp16,
    quantize_int8_rows,
)


class TestCollectiveProperties:
    @given(
        world=st.integers(2, 6),
        size=st.integers(1, 40),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_reduce_matches_numpy_sum(self, world, size, seed):
        rng = np.random.default_rng(seed)
        buffers = [rng.normal(size=size).astype(np.float64) for _ in range(world)]
        results = ProcessGroup(world_size=world).all_reduce(buffers, ReduceOp.SUM)
        expected = np.sum(buffers, axis=0)
        for r in results:
            np.testing.assert_allclose(r, expected, rtol=1e-9)

    @given(
        world=st.integers(1, 5),
        size=st.integers(1, 30),
        scale=st.floats(0.1, 100.0),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_reduce_linearity(self, world, size, scale, seed):
        """all_reduce(c * x) == c * all_reduce(x)."""
        rng = np.random.default_rng(seed)
        buffers = [rng.normal(size=size).astype(np.float64) for _ in range(world)]
        plain = ProcessGroup(world_size=world).all_reduce(buffers)[0]
        scaled = ProcessGroup(world_size=world).all_reduce([scale * b for b in buffers])[0]
        np.testing.assert_allclose(scaled, scale * plain, rtol=1e-8)

    @given(world=st.integers(2, 5), seed=st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_reduce_scatter_concat_equals_all_reduce(self, world, seed):
        rng = np.random.default_rng(seed)
        size = world * 6
        buffers = [rng.normal(size=size).astype(np.float64) for _ in range(world)]
        group = ProcessGroup(world_size=world)
        shards = group.reduce_scatter([b.copy() for b in buffers])
        full = ProcessGroup(world_size=world).all_reduce([b.copy() for b in buffers])[0]
        np.testing.assert_allclose(np.concatenate(shards), full, rtol=1e-9)


class TestQuantizationProperties:
    @given(
        rows=st.integers(1, 30),
        dim=st.integers(1, 16),
        scale=st.floats(1e-3, 1e3),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=50, deadline=None)
    def test_int8_error_bounded_by_half_step(self, rows, dim, scale, seed):
        rng = np.random.default_rng(seed)
        values = (rng.normal(size=(rows, dim)) * scale).astype(np.float32)
        codes, scales = quantize_int8_rows(values)
        restored = dequantize_int8_rows(codes, scales)
        step = np.abs(values).max(axis=1) / 127.0
        assert np.all(np.abs(restored - values) <= step[:, None] * 0.51 + 1e-6)

    @given(
        rows=st.integers(1, 20),
        dim=st.integers(1, 8),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=50, deadline=None)
    def test_fp16_idempotent_and_sign_preserving(self, rows, dim, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=(rows, dim)).astype(np.float32)
        once = quantize_fp16(values).astype(np.float32)
        twice = quantize_fp16(once).astype(np.float32)
        np.testing.assert_array_equal(once, twice)
        assert np.all(np.sign(once) == np.sign(np.where(np.abs(values) < 6e-8, once, values)))


class TestStreamingPackerProperties:
    @given(
        batch_size=st.integers(1, 50),
        chunk_sizes=st.lists(st.integers(1, 80), min_size=1, max_size=8),
        hot_probability=st.floats(0.0, 1.0),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_conservation_and_purity(self, batch_size, chunk_sizes, hot_probability, seed):
        """Every input is emitted exactly once, in a pure batch."""
        from repro.core.classifier import HotEmbeddingBagSpec
        from repro.core.streaming import StreamingPacker
        from repro.data.log import ClickLog
        from repro.data.schema import DatasetSchema, EmbeddingTableSpec

        num_rows = 40
        rng = np.random.default_rng(seed)
        hot_ids = np.flatnonzero(rng.random(num_rows) < hot_probability)
        if hot_ids.size == 0:
            hot_ids = np.array([0])
        schema = DatasetSchema(
            "p", 1, (EmbeddingTableSpec("t", num_rows=num_rows, dim=2),), 1
        )
        bags = {
            "t": HotEmbeddingBagSpec(
                "t", hot_ids.astype(np.int64), num_rows, 2, whole_table=False
            )
        }
        packer = StreamingPacker(bags, batch_size=batch_size)
        mask = bags["t"].hot_mask()

        emitted = []
        start = 0
        for n in chunk_sizes:
            chunk = ClickLog(
                schema=schema,
                dense=rng.normal(size=(n, 1)),
                sparse={"t": rng.integers(0, num_rows, size=(n, 1))},
                labels=rng.integers(0, 2, size=n).astype(np.float32),
            )
            for batch in packer.feed(start, chunk):
                emitted.append(batch)
            start += n
        for batch in packer.flush():
            emitted.append(batch)

        total = sum(chunk_sizes)
        indices = np.sort(np.concatenate([b.indices for b in emitted])) if emitted else np.array([])
        np.testing.assert_array_equal(indices, np.arange(total))
        for batch in emitted:
            batch_hot = mask[batch.sparse["t"]].all(axis=1)
            if batch.hot:
                assert batch_hot.all()
            else:
                assert not batch_hot.any()
