"""Unit tests for repro.data.schema."""

import pytest

from repro.data.schema import DatasetSchema, EmbeddingTableSpec, scaled_schema


def make_schema(**overrides):
    defaults = dict(
        name="s",
        num_dense=3,
        tables=(
            EmbeddingTableSpec("a", num_rows=1000, dim=16),
            EmbeddingTableSpec("b", num_rows=10, dim=16, multiplicity=4),
        ),
        num_samples=100,
    )
    defaults.update(overrides)
    return DatasetSchema(**defaults)


class TestEmbeddingTableSpec:
    def test_size_bytes(self):
        spec = EmbeddingTableSpec("t", num_rows=100, dim=16)
        assert spec.size_bytes == 100 * 16 * 4

    def test_rows_for_bytes(self):
        spec = EmbeddingTableSpec("t", num_rows=100, dim=16)
        assert spec.rows_for_bytes(64 * 10) == 10
        assert spec.rows_for_bytes(0) == 0
        assert spec.rows_for_bytes(63) == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_rows=0, dim=4),
            dict(num_rows=4, dim=0),
            dict(num_rows=4, dim=4, multiplicity=0),
            dict(num_rows=4, dim=4, zipf_exponent=-1.0),
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            EmbeddingTableSpec("t", **kwargs)


class TestDatasetSchema:
    def test_basic_accessors(self):
        schema = make_schema()
        assert schema.num_sparse == 2
        assert schema.table_names == ("a", "b")
        assert schema.table("a").num_rows == 1000
        assert schema.total_embedding_bytes == (1000 + 10) * 16 * 4

    def test_unknown_table_raises(self):
        with pytest.raises(KeyError):
            make_schema().table("nope")

    def test_lookups_per_sample_counts_multiplicity(self):
        assert make_schema().lookups_per_sample() == 1 + 4

    def test_large_small_partition(self):
        schema = make_schema()
        cutoff = 1000  # bytes
        large = schema.large_tables(cutoff)
        small = schema.small_tables(cutoff)
        assert {t.name for t in large} == {"a"}
        assert {t.name for t in small} == {"b"}
        assert len(large) + len(small) == schema.num_sparse

    def test_duplicate_table_names_rejected(self):
        with pytest.raises(ValueError):
            make_schema(
                tables=(
                    EmbeddingTableSpec("a", num_rows=10, dim=4),
                    EmbeddingTableSpec("a", num_rows=20, dim=4),
                )
            )

    def test_empty_tables_rejected(self):
        with pytest.raises(ValueError):
            make_schema(tables=())

    def test_describe_mentions_name(self):
        assert "s:" in make_schema().describe()


class TestScaledSchema:
    def test_scales_rows_and_samples(self):
        schema = make_schema()
        scaled = scaled_schema(schema, row_scale=0.1, sample_scale=0.5)
        assert scaled.table("a").num_rows == 100
        assert scaled.num_samples == 50

    def test_preserves_dim_and_multiplicity(self):
        scaled = scaled_schema(make_schema(), 0.1, 0.1)
        assert scaled.table("b").dim == 16
        assert scaled.table("b").multiplicity == 4

    def test_minimum_two_rows(self):
        scaled = scaled_schema(make_schema(), 1e-9, 0.5)
        assert all(t.num_rows >= 2 for t in scaled.tables)

    def test_rejects_non_positive_scales(self):
        with pytest.raises(ValueError):
            scaled_schema(make_schema(), 0.0, 1.0)
        with pytest.raises(ValueError):
            scaled_schema(make_schema(), 1.0, -1.0)
