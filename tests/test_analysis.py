"""Unit tests for the reporting helpers."""

import pytest

from repro.analysis import ascii_bar_chart, format_minutes_table, format_table, series_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "333" in lines[3]

    def test_title(self):
        out = format_table(["x"], [["1"]], title="Table I")
        assert out.splitlines()[0] == "Table I"

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestMinutesTable:
    def test_includes_paper_reference(self):
        out = format_minutes_table(
            "Table IV",
            ["kaggle"],
            ["1 GPU"],
            values={"kaggle": [12.5]},
            paper={"kaggle": [24.5]},
        )
        assert "12.5" in out and "(24.5)" in out

    def test_without_paper(self):
        out = format_minutes_table("T", ["x"], ["c"], values={"x": [1.0]})
        assert "(" not in out.splitlines()[-1]


class TestBarChart:
    def test_peak_gets_full_width(self):
        out = ascii_bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_zero_values(self):
        out = ascii_bar_chart(["a"], [0.0])
        assert "#" not in out

    def test_empty(self):
        assert ascii_bar_chart([], []) == "(empty chart)"

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])


class TestSeriesTable:
    def test_shape(self):
        out = series_table("batch", ["speedup"], [1, 2, 4], [[1.5, 2.0, 2.5]])
        lines = out.splitlines()
        assert len(lines) == 5
        assert "speedup" in lines[0]

    def test_multiple_series(self):
        out = series_table("x", ["a", "b"], [1], [[2.0], [3.0]])
        assert "2" in out and "3" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            series_table("x", ["a"], [1, 2], [[1.0]])
        with pytest.raises(ValueError):
            series_table("x", ["a", "b"], [1], [[1.0]])
