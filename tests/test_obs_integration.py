"""Integration tests: telemetry wired through the FAE pipeline.

Covers the pipeline instrumentation (spans from calibrate through
train), the registry counters the trainer feeds into
:class:`TrainResult`, the ``repro trace`` CLI, and smoke-runs of the
telemetry-wired examples.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro import (
    FAEConfig,
    FAETrainer,
    SyntheticClickLog,
    SyntheticConfig,
    fae_preprocess,
    train_test_split,
)
from repro.cli import main
from repro.data.schema import DatasetSchema, EmbeddingTableSpec
from repro.models.dlrm import DLRM, DLRMConfig
from repro.obs import get_registry, get_tracer, load_jsonl

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture
def clean_telemetry():
    tracer = get_tracer()
    registry = get_registry()
    previous = tracer.enabled
    tracer.reset()
    registry.clear()
    tracer.enabled = True
    yield tracer, registry
    tracer.enabled = previous
    tracer.reset()
    registry.clear()


@pytest.fixture
def small_setup():
    schema = DatasetSchema(
        name="obs-tiny",
        num_dense=4,
        tables=(
            EmbeddingTableSpec("table_00", num_rows=600, dim=8, zipf_exponent=1.2),
            EmbeddingTableSpec("table_01", num_rows=400, dim=8, zipf_exponent=1.1),
            EmbeddingTableSpec("table_02", num_rows=12, dim=8, zipf_exponent=0.5),
        ),
        num_samples=3000,
    )
    log = SyntheticClickLog(schema, SyntheticConfig(num_samples=3000, seed=7))
    train, test = train_test_split(log, 0.2, seed=7)
    config = FAEConfig(
        gpu_memory_budget=16 * 1024,
        sample_rate=0.2,
        large_table_min_bytes=1024,
        chunk_size=32,
        seed=7,
    )
    return schema, train, test, config


class TestPipelineSpans:
    def test_preprocess_emits_span_tree(self, clean_telemetry, small_setup):
        tracer, _ = clean_telemetry
        schema, train, _test, config = small_setup
        fae_preprocess(train, config, batch_size=128)
        names = {r.name for r in tracer.records()}
        for expected in (
            "preprocess",
            "calibrate",
            "calibrate.sample",
            "calibrate.profile",
            "calibrate.optimize",
            "calibrate.estimate",
            "classify",
            "classify.pack",
        ):
            assert expected in names, f"missing span {expected}"
        # calibrate nests under preprocess.
        by_id = {r.span_id: r for r in tracer.records()}
        calibrate = next(r for r in tracer.records() if r.name == "calibrate")
        assert by_id[calibrate.parent_id].name == "preprocess"

    def test_trainer_spans_and_sync_counters(self, clean_telemetry, small_setup):
        tracer, registry = clean_telemetry
        schema, train, test, config = small_setup
        plan = fae_preprocess(train, config, batch_size=128)
        model = DLRM(schema, DLRMConfig("4-8", "8-1", seed=1))

        events_before = registry.counter("fae.sync.events").value
        bytes_before = registry.counter("fae.sync.bytes").value
        trainer = FAETrainer(model, plan, lr=0.1)
        result = trainer.train(train, test, epochs=1, eval_samples=256)

        # The registry counters and the TrainResult agree — the result is
        # fed from the counter deltas.
        assert result.sync_events == int(
            registry.counter("fae.sync.events").value - events_before
        )
        assert result.sync_bytes == int(
            registry.counter("fae.sync.bytes").value - bytes_before
        )
        assert result.sync_events == trainer.replicator.sync_events
        assert result.sync_events > 0
        assert result.sync_bytes > 0

        names = {r.name for r in tracer.records()}
        assert "replicate.build" in names
        assert "replicate.sync" in names
        assert "train.eval" in names
        assert any(n.startswith("train.segment.") for n in names)

        # Transition counters can never exceed sync events (extra syncs
        # come from eval flushes).
        transitions = (
            registry.counter("train.transitions.to_hot").value
            + registry.counter("train.transitions.to_cold").value
        )
        assert transitions <= result.sync_events
        assert registry.gauge("scheduler.rate").value >= 1

    def test_hot_fraction_gauge_set(self, clean_telemetry, small_setup):
        _, registry = clean_telemetry
        schema, train, _test, config = small_setup
        plan = fae_preprocess(train, config, batch_size=128)
        gauge = registry.gauge("train.batch.hot_fraction")
        assert gauge.value == pytest.approx(plan.hot_input_fraction)

    def test_telemetry_off_pipeline_still_works(self, clean_telemetry, small_setup):
        tracer, _ = clean_telemetry
        tracer.enabled = False
        schema, train, test, config = small_setup
        plan = fae_preprocess(train, config, batch_size=128)
        model = DLRM(schema, DLRMConfig("4-8", "8-1", seed=1))
        result = FAETrainer(model, plan, lr=0.1).train(
            train, test, epochs=1, eval_samples=256
        )
        assert len(tracer.records()) == 0  # no spans recorded
        assert result.sync_events > 0  # counters still flow
        # Legacy timing aliases keep working without tracing.
        assert plan.calibration.profiling_seconds > 0
        assert plan.classify_seconds > 0


class TestTraceCommand:
    def test_prints_span_tree(self, capsys):
        assert main(["trace", "--rows", "4096", "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        for token in ("calibrate", "classify", "replicate", "train.segment"):
            assert token in out, f"summary tree missing {token}"
        assert "metrics:" in out
        assert "fae.sync.events" in out

    def test_out_writes_jsonl(self, capsys, tmp_path):
        out_file = tmp_path / "trace.jsonl"
        assert main(["trace", "--rows", "2048", "--out", str(out_file)]) == 0
        records = load_jsonl(out_file)
        span_names = {r["name"] for r in records if r["type"] == "span"}
        metric_names = {r["name"] for r in records if r["type"] == "metric"}
        assert "calibrate" in span_names
        assert "fae.sync.bytes" in metric_names
        assert all("duration" in r for r in records if r["type"] == "span")

    def test_trace_does_not_leak_enabled_state(self):
        previous = get_tracer().enabled
        main(["trace", "--rows", "1024"])
        assert get_tracer().enabled == previous

    def test_train_trace_flag(self, capsys):
        code = main(
            [
                "train",
                "criteo-kaggle",
                "--mode",
                "fae",
                "--samples",
                "2000",
                "--epochs",
                "1",
                "--batch-size",
                "128",
                "--trace",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "train.segment" in out

    def test_preprocess_trace_flag(self, capsys):
        code = main(
            ["preprocess", "criteo-kaggle", "--samples", "2000", "--trace"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "calibrate" in out


class TestExamplesSmoke:
    @pytest.mark.parametrize(
        "script", ["drift_monitoring.py", "realtime_serving.py"]
    )
    def test_example_runs(self, script):
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "examples" / script)],
            capture_output=True,
            text=True,
            timeout=300,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stderr
        assert "telemetry" in result.stdout
