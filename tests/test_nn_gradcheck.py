"""Systematic gradient checks across every model via the gradcheck utility."""

import numpy as np
import pytest

from repro.data import SyntheticClickLog, SyntheticConfig
from repro.data.loader import batch_from_log
from repro.data.schema import DatasetSchema, EmbeddingTableSpec
from repro.models.dlrm import DLRM, DLRMConfig
from repro.models.tbsm import TBSM, TBSMConfig
from repro.nn import BCEWithLogits
from repro.nn.gradcheck import check_gradients


def make_check(model, batch):
    loss_fn = BCEWithLogits()

    def loss():
        return loss_fn.forward(model.forward(batch), batch.labels)

    def backward():
        loss()
        model.backward(loss_fn.backward())

    return loss, backward


@pytest.fixture(scope="module")
def dlrm_setup():
    schema = DatasetSchema(
        "gc", 3,
        (
            EmbeddingTableSpec("t0", num_rows=12, dim=4, zipf_exponent=0.8),
            EmbeddingTableSpec("t1", num_rows=9, dim=4, zipf_exponent=0.8, multiplicity=2),
        ),
        16,
    )
    log = SyntheticClickLog(schema, SyntheticConfig(num_samples=16, seed=2))
    model = DLRM(schema, DLRMConfig("3-6-4", "6-1", seed=5))
    return model, batch_from_log(log, np.arange(16))


@pytest.fixture(scope="module")
def tbsm_setup():
    schema = DatasetSchema(
        "gt", 2,
        (
            EmbeddingTableSpec("user", num_rows=10, dim=4, zipf_exponent=0.8),
            EmbeddingTableSpec("item", num_rows=14, dim=4, zipf_exponent=0.8, multiplicity=4),
            EmbeddingTableSpec("cat", num_rows=6, dim=4, zipf_exponent=0.8, multiplicity=4),
        ),
        12,
    )
    log = SyntheticClickLog(schema, SyntheticConfig(num_samples=12, seed=3))
    model = TBSM(schema, TBSMConfig("2-4", ts_hidden="9-5", top_mlp="9-6-1", seed=6))
    return model, batch_from_log(log, np.arange(12))


class TestCheckGradients:
    def test_dlrm_all_parameters(self, dlrm_setup):
        model, batch = dlrm_setup
        loss, backward = make_check(model, batch)
        result = check_gradients(model.parameters(), loss, backward, seed=1)
        assert result.passed, (result.worst_parameter, result.max_relative_error)
        assert result.entries_checked >= len(model.parameters())

    def test_tbsm_all_parameters(self, tbsm_setup):
        model, batch = tbsm_setup
        loss, backward = make_check(model, batch)
        result = check_gradients(model.parameters(), loss, backward, seed=1)
        assert result.passed, (result.worst_parameter, result.max_relative_error)

    def test_detects_a_broken_gradient(self, dlrm_setup):
        """Sanity: corrupting the analytic gradient must fail the check."""
        model, batch = dlrm_setup
        loss_fn = BCEWithLogits()

        weight = model.bottom_mlp.layers[0].weight

        def loss():
            return loss_fn.forward(model.forward(batch), batch.labels)

        def broken_backward():
            loss()
            model.backward(loss_fn.backward())
            if weight.grad is not None:
                weight.grad *= -3.0  # wrong by construction

        result = check_gradients([weight], loss, broken_backward, seed=1)
        assert not result.passed
        assert result.worst_parameter == weight.name

    def test_rejects_bad_entries(self, dlrm_setup):
        model, batch = dlrm_setup
        loss, backward = make_check(model, batch)
        with pytest.raises(ValueError):
            check_gradients(model.parameters(), loss, backward, entries_per_parameter=0)
