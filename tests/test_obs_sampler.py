"""Unit tests for the resource sampler (repro.obs.sampler)."""

import pytest

from repro.obs import ResourceSampler, read_rss_bytes
from repro.obs.metrics import MetricsRegistry


class TestReadRss:
    def test_reports_positive_rss(self):
        # Works via /proc on Linux and the getrusage fallback elsewhere.
        assert read_rss_bytes() > 0

    def test_grows_under_allocation(self):
        before = read_rss_bytes()
        blob = bytearray(32 * 2**20)
        after = read_rss_bytes()
        del blob
        assert after >= before


class TestResourceSampler:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            ResourceSampler(interval=0)

    def test_sample_once_publishes_gauges(self):
        registry = MetricsRegistry()
        sampler = ResourceSampler(registry=registry)
        sampler.sample_once()
        snap = registry.snapshot()
        assert snap["proc.rss.bytes"]["value"] > 0
        assert snap["proc.rss.peak_bytes"]["value"] >= snap["proc.rss.bytes"]["value"] or (
            snap["proc.rss.peak_bytes"]["value"] > 0
        )

    def test_context_manager_summary(self):
        registry = MetricsRegistry()
        with ResourceSampler(interval=0.01, registry=registry) as sampler:
            sum(range(50_000))
        summary = sampler.summary()
        # One sample at start() plus the final one at stop().
        assert summary["samples"] >= 2
        assert summary["rss_peak_bytes"] > 0
        assert summary["rss_peak_bytes"] >= summary["rss_last_bytes"]
        assert summary["cpu_mean_percent"] >= 0.0
        assert summary["cpu_peak_percent"] >= summary["cpu_mean_percent"]

    def test_stop_is_idempotent(self):
        sampler = ResourceSampler(interval=0.01, registry=MetricsRegistry())
        sampler.start()
        first = sampler.stop()
        second = sampler.stop()
        assert second["samples"] == first["samples"]

    def test_format_summary_mentions_peak_rss(self):
        registry = MetricsRegistry()
        sampler = ResourceSampler(registry=registry)
        sampler.sample_once()
        text = sampler.format_summary()
        assert "peak rss" in text
        assert "MiB" in text
