"""Unit tests for the resource sampler (repro.obs.sampler)."""

import time

import pytest

from repro.obs import ResourceSampler, read_rss_bytes
from repro.obs.metrics import MetricsRegistry


class TestReadRss:
    def test_reports_positive_rss(self):
        # Works via /proc on Linux and the getrusage fallback elsewhere.
        assert read_rss_bytes() > 0

    def test_grows_under_allocation(self):
        before = read_rss_bytes()
        blob = bytearray(32 * 2**20)
        after = read_rss_bytes()
        del blob
        assert after >= before


class TestResourceSampler:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            ResourceSampler(interval=0)

    def test_sample_once_publishes_gauges(self):
        registry = MetricsRegistry()
        sampler = ResourceSampler(registry=registry)
        sampler.sample_once()
        snap = registry.snapshot()
        assert snap["proc.rss.bytes"]["value"] > 0
        assert snap["proc.rss.peak_bytes"]["value"] >= snap["proc.rss.bytes"]["value"] or (
            snap["proc.rss.peak_bytes"]["value"] > 0
        )

    def test_context_manager_summary(self):
        registry = MetricsRegistry()
        with ResourceSampler(interval=0.01, registry=registry) as sampler:
            sum(range(50_000))
        summary = sampler.summary()
        # One sample at start() plus the final one at stop().
        assert summary["samples"] >= 2
        assert summary["rss_peak_bytes"] > 0
        assert summary["rss_peak_bytes"] >= summary["rss_last_bytes"]
        assert summary["cpu_mean_percent"] >= 0.0
        assert summary["cpu_peak_percent"] >= summary["cpu_mean_percent"]

    def test_stop_is_idempotent(self):
        sampler = ResourceSampler(interval=0.01, registry=MetricsRegistry())
        sampler.start()
        first = sampler.stop()
        second = sampler.stop()
        assert second["samples"] == first["samples"]

    def test_thread_stopped_when_instrumented_block_raises(self):
        sampler = ResourceSampler(interval=0.01, registry=MetricsRegistry())
        with pytest.raises(RuntimeError, match="instrumented work failed"):
            with sampler:
                assert sampler.running
                raise RuntimeError("instrumented work failed")
        # The context manager joined the thread on the way out — a failed
        # run must not leak a sampling thread (or wedge process exit).
        assert not sampler.running
        assert sampler.summary()["samples"] >= 1

    def test_running_reflects_lifecycle(self):
        sampler = ResourceSampler(interval=0.01, registry=MetricsRegistry())
        assert not sampler.running
        sampler.start()
        assert sampler.running
        sampler.stop()
        assert not sampler.running

    def test_sampling_failure_ends_thread_quietly(self, monkeypatch):
        sampler = ResourceSampler(interval=0.01, registry=MetricsRegistry())
        sampler.start()
        assert sampler.running
        # Simulate procfs vanishing mid-run: the loop must exit, not spin.
        monkeypatch.setattr(
            sampler, "sample_once", lambda: (_ for _ in ()).throw(OSError("gone"))
        )
        deadline = time.monotonic() + 2.0
        while sampler.running and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not sampler.running
        summary = sampler.stop()  # still safe: join + swallowed final sample
        assert summary["samples"] >= 1

    def test_format_summary_mentions_peak_rss(self):
        registry = MetricsRegistry()
        sampler = ResourceSampler(registry=registry)
        sampler.sample_once()
        text = sampler.format_summary()
        assert "peak rss" in text
        assert "MiB" in text
