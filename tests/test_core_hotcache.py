"""Tests for the online frequency-aware embedding cache (repro.core.hotcache)."""

import numpy as np
import pytest

from repro.core import fae_preprocess
from repro.core.classifier import HotEmbeddingBagSpec
from repro.core.hotcache import (
    CacheDelta,
    EmbeddingHotCache,
    HotCacheConfig,
    repack_remaining,
)
from repro.core.sketch import CountMinSketch


def _bag(name, hot_ids, num_rows=64, dim=4, whole=False):
    return HotEmbeddingBagSpec(
        table_name=name,
        hot_ids=np.asarray(sorted(hot_ids), dtype=np.int64),
        num_rows=num_rows,
        dim=dim,
        whole_table=whole,
    )


def _cache(hot_ids=(0, 1, 2, 3), budget_rows=4, **knobs):
    """One tracked table 't', budget sized to `budget_rows` rows of dim 4."""
    config = HotCacheConfig(budget_bytes=budget_rows * 4 * 4, **knobs)
    return EmbeddingHotCache({"t": _bag("t", hot_ids)}, config)


class TestSketchAging:
    def test_decay_scales_counts(self):
        sketch = CountMinSketch(width=64, depth=3, seed=1)
        sketch.add(np.array([5, 5, 5, 5, 9], dtype=np.int64))
        before = sketch.query(np.array([5]))[0]
        sketch.decay(0.5)
        after = sketch.query(np.array([5]))[0]
        # Counters age by floor(count * factor): integral, deterministic.
        assert after == before * 0.5

    def test_decay_validates_factor(self):
        sketch = CountMinSketch(width=8, depth=2)
        with pytest.raises(ValueError):
            sketch.decay(0.0)
        with pytest.raises(ValueError):
            sketch.decay(1.5)

    def test_weighted_add(self):
        sketch = CountMinSketch(width=64, depth=3, seed=1)
        sketch.add(np.array([7], dtype=np.int64), counts=np.array([3]))
        assert sketch.query(np.array([7]))[0] >= 3

    def test_weighted_add_rejects_negative(self):
        sketch = CountMinSketch(width=8, depth=2)
        with pytest.raises(ValueError):
            sketch.add(np.array([1]), counts=np.array([-1]))


class TestHotCacheConfig:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            HotCacheConfig(budget_bytes=-1)
        with pytest.raises(ValueError):
            HotCacheConfig(budget_bytes=64, eviction="fifo")
        with pytest.raises(ValueError):
            HotCacheConfig(budget_bytes=64, decay=0.0)
        with pytest.raises(ValueError):
            HotCacheConfig(budget_bytes=64, rebalance_every=-1)


class TestObserve:
    def test_hits_and_misses_split(self):
        cache = _cache()
        cache.observe({"t": np.array([[0, 1], [2, 40]])})
        assert cache.hits == 3
        assert cache.misses == 1
        assert cache.hit_rate() == pytest.approx(0.75)

    def test_pinned_tables_always_hit(self):
        bags = {
            "small": _bag("small", range(8), num_rows=8, whole=True),
            "big": _bag("big", [0, 1]),
        }
        cache = EmbeddingHotCache(bags, HotCacheConfig(budget_bytes=1 << 16))
        cache.observe({"small": np.array([[7, 3]]), "big": np.array([[50]])})
        assert cache.hits == 2
        assert cache.misses == 1
        assert cache.contains("small", np.array([5]))[0]

    def test_contains_matches_membership(self):
        cache = _cache(hot_ids=(2, 5, 9))
        got = cache.contains("t", np.array([1, 2, 5, 9, 60]))
        np.testing.assert_array_equal(got, [False, True, True, True, False])


class TestRebalance:
    def test_popular_miss_displaces_cold_member(self):
        cache = _cache(hot_ids=(0, 1, 2, 3), budget_rows=4)
        # Member 0-2 stay warm; member 3 never appears; row 40 is hot.
        for _ in range(6):
            cache.observe({"t": np.array([[0, 1, 2, 40]])})
        delta = cache.rebalance()
        assert 40 in set(delta.promoted.get("t", np.array([])).tolist())
        assert 3 in set(delta.demoted.get("t", np.array([])).tolist())
        assert cache.contains("t", np.array([40]))[0]
        assert not cache.contains("t", np.array([3]))[0]

    def test_budget_is_respected(self):
        cache = _cache(hot_ids=(0, 1, 2, 3), budget_rows=4)
        for _ in range(4):
            cache.observe({"t": np.arange(20).reshape(1, 20)})
        cache.rebalance()
        assert cache.hot_bytes <= cache.config.budget_bytes

    def test_unpopular_miss_not_admitted_when_full(self):
        cache = _cache(hot_ids=(0, 1, 2, 3), budget_rows=4)
        # Every member out-counts the one-off miss.
        for _ in range(5):
            cache.observe({"t": np.array([[0, 1, 2, 3]])})
        cache.observe({"t": np.array([[50]])})
        delta = cache.rebalance()
        assert delta.is_empty
        assert not cache.contains("t", np.array([50]))[0]

    def test_empty_delta_keeps_version(self):
        cache = _cache()
        version = cache.version
        delta = cache.rebalance()
        assert delta.is_empty
        assert cache.version == version

    def test_membership_change_bumps_version(self):
        cache = _cache(hot_ids=(0, 1, 2, 3), budget_rows=4)
        for _ in range(6):
            cache.observe({"t": np.array([[40, 41]])})
        version = cache.version
        delta = cache.rebalance()
        assert not delta.is_empty
        assert cache.version == version + 1

    def test_auto_rebalance_window(self):
        cache = _cache(rebalance_every=3)
        assert not cache.should_rebalance()
        for _ in range(3):
            cache.observe({"t": np.array([[0]])})
        assert cache.should_rebalance()
        cache.rebalance()
        assert not cache.should_rebalance()

    def test_lru_evicts_oldest(self):
        cache = _cache(hot_ids=(0, 1, 2, 3), budget_rows=4, eviction="lru")
        cache.observe({"t": np.array([[3]])})  # 3 is most recent
        for _ in range(6):
            cache.observe({"t": np.array([[1, 2, 3, 40]])})
        delta = cache.rebalance()
        # 0 was never touched after init: the LRU victim.
        assert 0 in set(delta.demoted.get("t", np.array([])).tolist())

    def test_deterministic_across_instances(self):
        traffic = [np.array([[0, 1, 17, 40, 40]]), np.array([[2, 40, 51]])]
        outcomes = []
        for _ in range(2):
            cache = _cache(hot_ids=(0, 1, 2, 3), budget_rows=4)
            for window in traffic:
                cache.observe({"t": window})
            cache.rebalance()
            outcomes.append(cache.bags()["t"].hot_ids.tolist())
        assert outcomes[0] == outcomes[1]


class TestBagsAndStats:
    def test_bags_are_classifier_compatible(self):
        cache = _cache(hot_ids=(5, 2, 9))
        bag = cache.bags()["t"]
        assert isinstance(bag, HotEmbeddingBagSpec)
        np.testing.assert_array_equal(bag.hot_ids, [2, 5, 9])
        assert not bag.whole_table

    def test_stats_shape(self):
        cache = _cache()
        cache.observe({"t": np.array([[0, 50]])})
        stats = cache.stats()
        for key in (
            "hits",
            "misses",
            "hit_rate",
            "hot_rows",
            "hot_bytes",
            "promotions",
            "demotions",
            "rebalances",
            "version",
        ):
            assert key in stats

    def test_from_schema_pins_small_tables(self, tiny_schema):
        cache = EmbeddingHotCache.from_schema(
            tiny_schema,
            HotCacheConfig(budget_bytes=8 * 1024),
            large_table_min_bytes=1024,
        )
        bags = cache.bags()
        # table_02 (12 rows x dim 8) is under the cutoff: pinned whole.
        assert bags["table_02"].whole_table
        assert not bags["table_00"].whole_table
        assert bags["table_00"].hot_ids.size == 0  # cold start


class TestCacheDelta:
    def test_counts_and_tables(self):
        delta = CacheDelta(
            promoted={"a": np.array([1, 2]), "b": np.array([], dtype=np.int64)},
            demoted={"a": np.array([9])},
        )
        assert delta.num_promoted == 2
        assert delta.num_demoted == 1
        assert not delta.is_empty
        assert delta.tables() == ["a"]


class TestRepackRemaining:
    def test_repack_preserves_rows_and_purity(self, tiny_log, tiny_fae_config):
        plan = fae_preprocess(tiny_log, tiny_fae_config, batch_size=64)
        cache = EmbeddingHotCache(
            plan.bags, HotCacheConfig(budget_bytes=tiny_fae_config.gpu_memory_budget)
        )
        # Promote fresh traffic so membership actually moves.
        rng = np.random.default_rng(5)
        for _ in range(8):
            cache.observe(
                {
                    name: rng.integers(0, spec.num_rows, size=(32, 1))
                    for name, spec in zip(
                        tiny_log.schema.table_names, tiny_log.schema.tables
                    )
                }
            )
        delta = cache.rebalance()
        if delta.is_empty:
            pytest.skip("no membership change to repack")
        new_bags = cache.bags()
        dataset = plan.dataset
        repacked, cursors = repack_remaining(
            tiny_log, dataset, {"hot": 0, "cold": 0}, delta, new_bags
        )
        assert cursors == {"hot": 0, "cold": 0}
        masks = {name: bag.hot_mask() for name, bag in new_bags.items()}
        total = sum(b.size for b in repacked.hot_batches) + sum(
            b.size for b in repacked.cold_batches
        )
        original = sum(b.size for b in dataset.hot_batches) + sum(
            b.size for b in dataset.cold_batches
        )
        assert total == original
        # Hot batches must be PURE hot under the new membership.
        for batch in repacked.hot_batches:
            for name, mask in masks.items():
                assert mask[tiny_log.sparse[name][batch]].all()
