"""Tests for the highly-available serving tier (repro.serve.cluster).

Covers the four HA mechanisms (backpressure, failover, hedging,
generation reload) both directly on :class:`ServingCluster` and through
the seeded chaos replay, plus the :class:`FaultPlan` replica fault
schedule that drives them.
"""

import json

import numpy as np
import pytest

from repro.data import dataset_by_name
from repro.models import build_model, workload_by_name
from repro.resilience.faults import FaultPlan
from repro.serve import (
    ClusterBusyError,
    ClusterReplayConfig,
    InferenceEngine,
    ServingCluster,
    VirtualClock,
    format_cluster_report,
    run_cluster_replay,
)


class TestReplicaFaultPlan:
    def test_parse_replica_fault_keys(self):
        plan = FaultPlan.parse(
            "seed=3,kill_replica=1@120,slow_replica=2@40:160,"
            "slow_replica_factor=25,flap_replica=0@30/20"
        )
        assert plan.replica_kill == (1, 120)
        assert plan.replica_slow == (2, 40, 160)
        assert plan.replica_slow_factor == 25.0
        assert plan.replica_flap == (0, 30, 20)

    def test_kill_is_permanent_from_the_request_on(self):
        plan = FaultPlan(replica_kill=(1, 10))
        assert plan.replica_alive(1, 9)
        assert not plan.replica_alive(1, 10)
        assert not plan.replica_alive(1, 500)
        assert plan.replica_alive(0, 500)  # other replicas unaffected

    def test_flap_alternates_down_and_up(self):
        plan = FaultPlan(replica_flap=(0, 30, 20))
        assert plan.replica_alive(0, 29)
        assert not plan.replica_alive(0, 30)  # down window
        assert not plan.replica_alive(0, 49)
        assert plan.replica_alive(0, 50)  # back up
        assert plan.replica_alive(0, 69)
        assert not plan.replica_alive(0, 70)  # down again

    def test_slow_multiplier_window(self):
        plan = FaultPlan(replica_slow=(2, 40, 160), replica_slow_factor=25.0)
        assert plan.replica_slow_multiplier(2, 39) == 1.0
        assert plan.replica_slow_multiplier(2, 40) == 25.0
        assert plan.replica_slow_multiplier(2, 159) == 25.0
        assert plan.replica_slow_multiplier(2, 160) == 1.0
        assert plan.replica_slow_multiplier(0, 100) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(replica_kill=(-1, 10))
        with pytest.raises(ValueError):
            FaultPlan(replica_slow=(0, 50, 40))
        with pytest.raises(ValueError):
            FaultPlan(replica_flap=(0, 10, 0))
        with pytest.raises(ValueError):
            FaultPlan(replica_slow_factor=0.5)


@pytest.fixture(scope="module")
def cluster_fixture():
    schema = dataset_by_name("criteo-kaggle", "tiny")
    model = build_model(workload_by_name("RMC2"), schema=schema, seed=3)
    return schema, model


def _make_cluster(model, n=3, **kwargs):
    engines = [InferenceEngine(model, clock=VirtualClock()) for _ in range(n)]
    return ServingCluster(engines, **kwargs)


def _request(schema):
    dense = np.zeros(schema.num_dense, dtype=np.float32)
    context = {t.name: np.zeros(t.multiplicity, dtype=np.int64) for t in schema.tables}
    table = max(schema.tables, key=lambda t: (t.num_rows, t.name)).name
    return dense, context, table, np.arange(32, dtype=np.int64)


class TestServingClusterUnit:
    def test_rejects_wall_clock_engines(self, cluster_fixture):
        _schema, model = cluster_fixture
        with pytest.raises(TypeError, match="virtual clock"):
            ServingCluster([InferenceEngine(model)])

    def test_rejects_empty_pool_and_bad_knobs(self, cluster_fixture):
        _schema, model = cluster_fixture
        with pytest.raises(ValueError):
            ServingCluster([])
        with pytest.raises(ValueError):
            _make_cluster(model, queue_capacity=0)
        with pytest.raises(ValueError):
            _make_cluster(model, hedge_after_s=-1.0)

    def test_queue_backpressure_rejects_with_retry_after(self, cluster_fixture):
        schema, model = cluster_fixture
        cluster = _make_cluster(model, n=1, queue_capacity=2)
        dense, context, table, candidates = _request(schema)
        # Two expensive requests at t=0 fill the backlog; the third is
        # rejected with a usable retry-after hint.
        for _ in range(2):
            cluster.submit(0.0, 1e-3, dense, context, table, candidates)
        with pytest.raises(ClusterBusyError) as excinfo:
            cluster.submit(0.0, 1e-3, dense, context, table, candidates)
        assert excinfo.value.retry_after_s > 0
        # Once the backlog drains (virtual time passes), admission reopens.
        late = cluster.slots[0].busy_until + 1.0
        response = cluster.submit(late, 1e-3, dense, context, table, candidates)
        assert response.latency_s > 0

    def test_failover_discovers_death_then_routes_around(self, cluster_fixture):
        schema, model = cluster_fixture
        cluster = _make_cluster(model, n=3)
        dense, context, table, candidates = _request(schema)
        cluster.kill_replica(0)
        first = cluster.submit(0.0, 1e-4, dense, context, table, candidates)
        # Replica 0 was least-loaded and believed healthy: the dispatch
        # failed, the request failed over, and the prober marked it down.
        assert first.failovers == 1
        assert first.replica != 0
        assert not cluster.slots[0].healthy
        second = cluster.submit(1.0, 1e-4, dense, context, table, candidates)
        assert second.failovers == 0  # routed around the known-dead replica

    def test_probe_readmits_revived_replica(self, cluster_fixture):
        schema, model = cluster_fixture
        cluster = _make_cluster(model, n=2)
        dense, context, table, candidates = _request(schema)
        cluster.kill_replica(0)
        cluster.submit(0.0, 1e-4, dense, context, table, candidates)
        assert not cluster.slots[0].healthy
        cluster.revive_replica(0)
        cluster.submit(1.0, 1e-4, dense, context, table, candidates)
        assert cluster.slots[0].healthy  # probe re-admitted it

    def test_hedge_takes_first_result_and_cancels_loser(self, cluster_fixture):
        schema, model = cluster_fixture
        cluster = _make_cluster(model, n=2, hedge_after_s=1e-3)
        dense, context, table, candidates = _request(schema)
        cluster.set_slow_factor(0, 100.0)
        response = cluster.submit(0.0, 1e-4, dense, context, table, candidates)
        assert response.hedged
        assert response.hedge_won
        assert response.replica == 1
        # The slow primary was cancelled when the hedge returned: its
        # slot frees at the winner's completion, not its own.
        assert cluster.slots[0].busy_until <= cluster.slots[1].busy_until

    def test_fast_primary_is_not_hedged(self, cluster_fixture):
        schema, model = cluster_fixture
        cluster = _make_cluster(model, n=2, hedge_after_s=10.0)
        dense, context, table, candidates = _request(schema)
        response = cluster.submit(0.0, 1e-5, dense, context, table, candidates)
        assert not response.hedged

    def test_reload_rolls_through_pool_without_mixing(self, cluster_fixture):
        schema, model = cluster_fixture
        cluster = _make_cluster(model, n=3)
        dense, context, table, candidates = _request(schema)
        other = build_model(workload_by_name("RMC2"), schema=schema, seed=77)
        generation = cluster.begin_reload(other)
        assert generation == 1
        assert cluster.reload_active
        now, seen = 0.0, set()
        while cluster.reload_active:
            now += 0.01
            response = cluster.submit(
                now, 1e-4, dense, context, table, candidates
            )
            seen.add(response.generation)
        assert all(slot.generation == 1 for slot in cluster.slots)
        assert all(slot.engine.model is other for slot in cluster.slots)
        # During the roll both generations served, each response wholly
        # from one generation.
        assert seen <= {0, 1}
        post = cluster.submit(now + 1.0, 1e-4, dense, context, table, candidates)
        assert post.generation == 1

    def test_health_snapshot_shape(self, cluster_fixture):
        schema, model = cluster_fixture
        cluster = _make_cluster(model, n=2)
        dense, context, table, candidates = _request(schema)
        cluster.submit(0.0, 1e-4, dense, context, table, candidates)
        health = cluster.health()
        assert len(health["replicas"]) == 2
        assert {"replica", "generation", "alive", "healthy", "draining"} <= set(
            health["replicas"][0]
        )
        assert health["reload"]["active"] is False
        assert health["cache"] is None  # no hot cache installed
        json.dumps(health)

    def test_health_surfaces_shared_cache_stats(self, cluster_fixture):
        from repro.core.hotcache import EmbeddingHotCache, HotCacheConfig

        schema, model = cluster_fixture
        cache = EmbeddingHotCache.from_schema(
            schema,
            HotCacheConfig(budget_bytes=32 * 1024),
            large_table_min_bytes=1024,
        )
        engines = [
            InferenceEngine(model, clock=VirtualClock(), hot_cache=cache)
            for _ in range(2)
        ]
        cluster = ServingCluster(engines)
        dense, context, table, candidates = _request(schema)
        cluster.submit(0.0, 1e-4, dense, context, table, candidates)
        health = cluster.health()
        assert health["cache"] is not None
        assert health["cache"]["hits"] + health["cache"]["misses"] > 0
        assert health["cache"]["hot_bytes"] <= 32 * 1024
        json.dumps(health)


def _chaos_config(**overrides):
    defaults = dict(
        requests=200,
        candidates=128,
        scale="tiny",
        seed=11,
        replicas=3,
        hedge_after_s=0.02,
        reload_at=None,
        faults=None,
    )
    defaults.update(overrides)
    return ClusterReplayConfig(**defaults)


class TestClusterReplayCache:
    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            _chaos_config(cache_budget_bytes=-1)

    def test_cached_replay_reports_cache_and_stays_deterministic(self):
        config = _chaos_config(requests=120, cache_budget_bytes=32 * 1024)
        report = run_cluster_replay(config)
        cache = report["cluster"]["cache"]
        assert cache is not None
        assert cache["hits"] + cache["misses"] > 0
        assert cache["hot_bytes"] <= 32 * 1024
        rerun = run_cluster_replay(config)
        assert json.dumps(report, sort_keys=True) == json.dumps(
            rerun, sort_keys=True
        )

    def test_uncached_replay_reports_no_cache(self):
        report = run_cluster_replay(_chaos_config(requests=60))
        assert report["cluster"]["cache"] is None


class TestClusterReplayChaos:
    def test_replica_kill_mid_replay_completes_everything(self):
        # One of three replicas dies at request 60; with hedging on, every
        # admitted request must still complete, with the failover counted.
        report = run_cluster_replay(
            _chaos_config(faults="seed=7,kill_replica=1@60")
        )
        requests = report["requests"]
        assert requests["completed"] == requests["admitted"] == requests["total"]
        assert requests["shed"] == 0
        assert report["rates"]["error"] == 0.0
        assert report["failovers"] >= 1
        assert report["faults_injected"]["replica_kill"] == 1
        assert not report["cluster"]["replicas"][1]["alive"]

    def test_hedging_beats_slow_replica_p99(self):
        base = dict(
            seed=11,
            deadline_s=None,
            faults="seed=7,slow_replica=0@20:160,slow_replica_factor=40",
        )
        without = run_cluster_replay(_chaos_config(hedge_after_s=None, **base))
        hedged = run_cluster_replay(_chaos_config(hedge_after_s=0.005, **base))
        assert hedged["hedge"]["issued"] > 0
        assert hedged["hedge"]["wins"] > 0
        assert hedged["latency_s"]["p99"] < without["latency_s"]["p99"]

    def test_flapping_replica_is_readmitted(self):
        report = run_cluster_replay(
            _chaos_config(faults="seed=7,flap_replica=0@30/25")
        )
        assert report["faults_injected"]["replica_flap"] == 1
        assert report["probe_revived"] >= 1
        assert report["requests"]["completed"] == report["requests"]["admitted"]

    def test_reload_under_load_is_zero_downtime(self):
        report = run_cluster_replay(_chaos_config(reload_at=100))
        requests = report["requests"]
        reload_info = report["reload"]
        assert requests["shed"] == 0
        assert requests["rejected"] == 0
        assert requests["completed"] == requests["total"]
        assert reload_info["complete"]
        assert reload_info["installs"] == 3
        assert reload_info["mixed_generation_responses"] == 0
        generations = reload_info["generations_served"]
        assert set(generations) == {"0", "1"}
        assert sum(generations.values()) == requests["completed"]

    def test_chaos_report_is_byte_identical_per_seed(self):
        config = _chaos_config(
            reload_at=100,
            faults="seed=7,kill_replica=1@60,slow_replica=2@20:80",
        )
        first = json.dumps(run_cluster_replay(config), sort_keys=True)
        second = json.dumps(run_cluster_replay(config), sort_keys=True)
        assert first == second

    def test_different_seed_differs(self):
        a = run_cluster_replay(_chaos_config(seed=11))
        b = run_cluster_replay(_chaos_config(seed=12))
        assert a["latency_s"] != b["latency_s"]

    def test_backpressure_rejections_are_accounted(self):
        # A tiny queue under a hot burst must reject some traffic, and
        # the rejections must show up in rates and rejected-latency.
        report = run_cluster_replay(
            _chaos_config(
                replicas=2,
                queue_capacity=2,
                base_rate=5000.0,
                chunk_cost_s=2e-3,
                hedge_after_s=None,
            )
        )
        requests = report["requests"]
        assert requests["rejected"] > 0
        assert report["rates"]["rejected"] > 0
        assert report["queue"]["rejected"] == requests["rejected"]
        assert report["rejected_latency_s"]["count"] == requests["rejected"]
        assert requests["admitted"] + requests["rejected"] == requests["total"]

    def test_format_cluster_report_smoke(self):
        report = run_cluster_replay(
            _chaos_config(reload_at=100, faults="seed=7,kill_replica=1@60")
        )
        text = format_cluster_report(report)
        assert "cluster slo report" in text
        assert "failovers" in text
        assert "reload" in text
        assert "mixed-generation responses 0" in text

    def test_cluster_config_validation(self):
        with pytest.raises(ValueError, match="replicas"):
            _chaos_config(replicas=0)
        with pytest.raises(ValueError, match="simulated"):
            _chaos_config(mode="wall")
        with pytest.raises(ValueError, match="fault spec"):
            _chaos_config(faults="bogus_key=1")
        with pytest.raises(ValueError, match="queue_capacity"):
            _chaos_config(queue_capacity=0)
