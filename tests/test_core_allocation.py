"""Tests for hot-budget allocation strategies."""

import numpy as np
import pytest

from repro.core import EmbeddingLogger, FAEConfig, InputProcessor
from repro.core.allocation import greedy_product_allocation, threshold_allocation
from repro.data import SyntheticClickLog, SyntheticConfig
from repro.data.schema import DatasetSchema, EmbeddingTableSpec


@pytest.fixture(scope="module")
def seq_profile():
    """A TBSM-shaped schema: one multiplicity-21 table, one mult-1 table."""
    schema = DatasetSchema(
        name="seq",
        num_dense=2,
        tables=(
            EmbeddingTableSpec("users", num_rows=800, dim=8, zipf_exponent=1.05),
            EmbeddingTableSpec(
                "items", num_rows=1200, dim=8, zipf_exponent=1.05, multiplicity=21
            ),
        ),
        num_samples=6000,
    )
    log = SyntheticClickLog(schema, SyntheticConfig(num_samples=6000, seed=4))
    config = FAEConfig(large_table_min_bytes=512, chunk_size=32)
    profile = EmbeddingLogger(config).profile(log, np.arange(len(log)))
    return profile, log


BUDGET = 24 * 1024


class TestThresholdAllocation:
    def test_fits_budget(self, seq_profile):
        profile, _log = seq_profile
        allocation = threshold_allocation(profile, BUDGET)
        assert allocation.bytes_used <= BUDGET
        assert set(allocation.hot_rows) == {"users", "items"}

    def test_monotone_in_budget(self, seq_profile):
        profile, _log = seq_profile
        small = threshold_allocation(profile, BUDGET // 2)
        large = threshold_allocation(profile, BUDGET)
        for name in small.hot_rows:
            assert large.hot_rows[name] >= small.hot_rows[name]

    def test_impossible_budget(self, seq_profile):
        profile, _log = seq_profile
        # make a profile whose small tables exceed the budget: use the
        # real one but budget 0.
        with pytest.raises(ValueError):
            threshold_allocation(profile, -1)


class TestGreedyProductAllocation:
    def test_fits_budget(self, seq_profile):
        profile, _log = seq_profile
        allocation = greedy_product_allocation(profile, BUDGET)
        assert allocation.bytes_used <= BUDGET

    def test_beats_or_matches_threshold_objective(self, seq_profile):
        """The greedy optimizes the true objective; it can only win."""
        profile, _log = seq_profile
        greedy = greedy_product_allocation(profile, BUDGET)
        threshold = threshold_allocation(profile, BUDGET)
        assert greedy.log_hot_fraction >= threshold.log_hot_fraction - 1e-9

    def test_favours_high_multiplicity_table(self, seq_profile):
        """The 21-lookup table should get disproportionate coverage."""
        profile, _log = seq_profile
        greedy = greedy_product_allocation(profile, BUDGET)
        threshold = threshold_allocation(profile, BUDGET)

        def coverage(alloc, name):
            counts = np.sort(profile.tables[name].counts)[::-1]
            k = alloc.hot_rows[name]
            return counts[:k].sum() / counts.sum()

        # Greedy gives the sequence table at least the threshold rule's
        # coverage (it pays off 21x in the product).
        assert coverage(greedy, "items") >= coverage(threshold, "items") - 1e-12

    def test_measured_hot_fraction_improves(self, seq_profile):
        """The predicted gain shows up in actual input classification."""
        profile, log = seq_profile
        greedy = greedy_product_allocation(profile, BUDGET)
        threshold = threshold_allocation(profile, BUDGET)
        greedy_mask = InputProcessor(greedy.to_bag_specs(profile)).classify_inputs(log)
        threshold_mask = InputProcessor(threshold.to_bag_specs(profile)).classify_inputs(log)
        assert greedy_mask.mean() >= threshold_mask.mean() - 0.01

    def test_prediction_matches_measurement(self, seq_profile):
        profile, log = seq_profile
        allocation = greedy_product_allocation(profile, BUDGET)
        mask = InputProcessor(allocation.to_bag_specs(profile)).classify_inputs(log)
        # The product model assumes per-table independence; the planted
        # generator draws tables independently, so it should be close.
        assert allocation.predicted_hot_fraction() == pytest.approx(
            mask.mean(), abs=0.1
        )

    def test_block_granularity(self, seq_profile):
        profile, _log = seq_profile
        fine = greedy_product_allocation(profile, BUDGET, block_rows=4)
        coarse = greedy_product_allocation(profile, BUDGET, block_rows=64)
        # Finer blocks can only match or improve the objective.
        assert fine.log_hot_fraction >= coarse.log_hot_fraction - 1e-6

    def test_bag_specs_valid(self, seq_profile):
        profile, _log = seq_profile
        allocation = greedy_product_allocation(profile, BUDGET)
        bags = allocation.to_bag_specs(profile)
        for name, bag in bags.items():
            assert np.all(np.diff(bag.hot_ids) > 0)
            assert bag.num_hot == allocation.hot_rows.get(name, bag.num_hot)

    def test_bad_block_rows(self, seq_profile):
        profile, _log = seq_profile
        with pytest.raises(ValueError):
            greedy_product_allocation(profile, BUDGET, block_rows=0)

    def test_large_budget_reaches_full_coverage(self, seq_profile):
        profile, _log = seq_profile
        allocation = greedy_product_allocation(profile, 10**9)
        # The greedy stops once coverage is 1.0: rows with zero sampled
        # accesses add nothing to the objective and stay cold.
        for name, table_profile in profile.tables.items():
            accessed = int(np.count_nonzero(table_profile.counts))
            assert allocation.hot_rows[name] >= accessed
        assert allocation.predicted_hot_fraction() == pytest.approx(1.0)
