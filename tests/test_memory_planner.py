"""Tests for the automatic GPU memory-budget planner."""

import pytest

from repro.core.memory_planner import FRAMEWORK_RESERVED, plan_memory_budget
from repro.hw import characterize
from repro.hw.spec import DeviceSpec
from repro.models import workload_by_name


@pytest.fixture(scope="module")
def rmc2():
    return characterize(workload_by_name("RMC2"))


class TestPlanMemoryBudget:
    def test_v100_leaves_room_for_paper_budget(self, rmc2):
        plan = plan_memory_budget(rmc2, per_gpu_batch=1024)
        assert plan.feasible
        # A V100 easily accommodates the paper's 256 MB choice.
        assert plan.recommended_budget >= 256 * 2**20

    def test_max_budget_cap(self, rmc2):
        plan = plan_memory_budget(rmc2, per_gpu_batch=1024, max_budget=256 * 2**20)
        assert plan.recommended_budget == 256 * 2**20

    def test_budget_shrinks_with_batch(self, rmc2):
        small = plan_memory_budget(rmc2, per_gpu_batch=1024)
        large = plan_memory_budget(rmc2, per_gpu_batch=65536)
        assert large.recommended_budget < small.recommended_budget
        assert large.activation_bytes > small.activation_bytes

    def test_infeasible_on_tiny_gpu(self, rmc2):
        tiny_gpu = DeviceSpec(
            name="tiny",
            peak_flops=1e12,
            mem_bandwidth=1e11,
            mem_capacity=FRAMEWORK_RESERVED + 1000,
            gemm_efficiency=0.5,
            gather_efficiency=0.5,
            op_overhead=1e-6,
        )
        plan = plan_memory_budget(rmc2, per_gpu_batch=1024, gpu=tiny_gpu)
        assert not plan.feasible
        assert plan.recommended_budget == 0

    def test_utilization_bounded(self, rmc2):
        plan = plan_memory_budget(rmc2, per_gpu_batch=2048)
        assert 0 < plan.utilization() <= 1.0

    def test_accounts_for_model_state(self, rmc2):
        plan = plan_memory_budget(rmc2, per_gpu_batch=1024)
        # 3x dense params: weights + grads + optimizer state.
        assert plan.model_bytes == pytest.approx(3 * rmc2.dense_param_bytes)

    def test_rejects_bad_batch(self, rmc2):
        with pytest.raises(ValueError):
            plan_memory_budget(rmc2, per_gpu_batch=0)


class TestChromeTrace:
    def test_trace_events_valid(self, rmc2):
        import json

        from repro.hw import Cluster, PipelinedSimulator

        schedule = PipelinedSimulator(Cluster(num_gpus=1), rmc2).baseline_epoch(
            max_batches=4
        )
        events = schedule.to_chrome_trace()
        assert len(events) == len(schedule.tasks)
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0
            assert event["ts"] >= 0
        json.dumps({"traceEvents": events})  # serializable

    def test_rows_map_resources(self, rmc2):
        from repro.hw import Cluster, PipelinedSimulator

        schedule = PipelinedSimulator(Cluster(num_gpus=1), rmc2).baseline_epoch(
            max_batches=2
        )
        events = schedule.to_chrome_trace()
        by_cat = {e["cat"]: e["tid"] for e in events}
        assert len(set(by_cat.values())) == len(by_cat)  # one row per resource
