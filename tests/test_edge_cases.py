"""Edge-case and error-path coverage across subsystems.

Behaviours the main test files don't pin down: format versioning, power
phase mapping, timeline units, workload validation corners, sharded-mode
feasibility boundaries, and CLI paths for every dataset.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.fae_format import FORMAT_VERSION, load_fae_dataset, save_fae_dataset
from repro.hw import Cluster, PowerModel, TrainingSimulator, characterize
from repro.hw.simulator import (
    EpochTimeline,
    GPU_COMPUTE_PHASES,
    GPU_WAIT_PHASES,
    PhaseBreakdown,
    TRANSFER_PHASES,
)
from repro.models import workload_by_name


class TestFAEFormatVersioning:
    def test_version_mismatch_rejected(self, tiny_plan, tmp_path):
        path = tmp_path / "old.npz"
        tiny_plan.save(path)
        # Rewrite the archive with a bumped version field.
        with np.load(path) as archive:
            payload = {k: archive[k] for k in archive.files}
        payload["format_version"] = np.array(FORMAT_VERSION + 1)
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="version"):
            load_fae_dataset(path)

    def test_threshold_precision_preserved(self, tiny_plan, tmp_path):
        path = tmp_path / "p.npz"
        save_fae_dataset(path, tiny_plan.dataset, tiny_plan.bags, 1.23456789e-7)
        _d, _b, threshold = load_fae_dataset(path)
        assert threshold == pytest.approx(1.23456789e-7, rel=1e-12)


class TestPhaseBreakdown:
    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            PhaseBreakdown().add("x", -1.0)

    def test_merge_with_weight(self):
        a = PhaseBreakdown({"x": 1.0})
        b = PhaseBreakdown({"x": 2.0, "y": 1.0})
        a.merge(b, weight=3.0)
        assert a.phases == {"x": 7.0, "y": 3.0}

    def test_fraction_of_empty(self):
        assert PhaseBreakdown().fraction("x") == 0.0

    def test_scaled_leaves_original(self):
        a = PhaseBreakdown({"x": 1.0})
        b = a.scaled(5.0)
        assert a.phases["x"] == 1.0 and b.phases["x"] == 5.0


class TestEpochTimelineUnits:
    def test_minutes_and_seconds(self):
        timeline = EpochTimeline("baseline", 1, PhaseBreakdown({"x": 120.0}), 10)
        assert timeline.seconds == 120.0
        assert timeline.minutes == 2.0

    def test_communication_only_counts_transfer_phases(self):
        breakdown = PhaseBreakdown({"transfer_fwd": 1.0, "mlp_forward": 9.0})
        timeline = EpochTimeline("baseline", 1, breakdown, 10)
        assert timeline.communication_seconds() == 1.0


class TestPowerPhaseMapping:
    def test_wait_draws_more_than_compute(self):
        pm = PowerModel()
        wait = EpochTimeline("b", 1, PhaseBreakdown({GPU_WAIT_PHASES[0]: 1.0}), 1)
        compute = EpochTimeline("b", 1, PhaseBreakdown({GPU_COMPUTE_PHASES[0]: 1.0}), 1)
        assert pm.average_watts(wait) > pm.average_watts(compute)

    def test_transfer_is_the_hottest_phase(self):
        pm = PowerModel()
        transfer = EpochTimeline("b", 1, PhaseBreakdown({TRANSFER_PHASES[0]: 1.0}), 1)
        for phase in (*GPU_WAIT_PHASES, *GPU_COMPUTE_PHASES, "allreduce"):
            other = EpochTimeline("b", 1, PhaseBreakdown({phase: 1.0}), 1)
            assert pm.average_watts(transfer) >= pm.average_watts(other)

    def test_zero_timeline(self):
        pm = PowerModel()
        empty = EpochTimeline("b", 1, PhaseBreakdown(), 1)
        assert pm.average_watts(empty) == 0.0
        assert pm.reduction_percent(empty, empty) == 0.0


class TestShardedFeasibilityBoundary:
    def test_kaggle_fits_single_gpu(self):
        workload = characterize(workload_by_name("RMC2"))
        sim = TrainingSimulator(Cluster(num_gpus=1), workload)
        assert sim.sharded_feasible()

    def test_terabyte_never_fits_four(self):
        workload = characterize(workload_by_name("RMC3"))
        for k in (1, 2, 4):
            assert not TrainingSimulator(Cluster(num_gpus=k), workload).sharded_feasible()
        with pytest.raises(ValueError, match="infeasible"):
            TrainingSimulator(Cluster(num_gpus=4), workload).epoch("sharded")

    def test_feasibility_threshold_scales_with_gpus(self):
        workload = characterize(workload_by_name("RMC3"))
        # 8 GPUs x 16 GB x 0.85 = 108.8 GiB > 60 GiB of tables.
        assert TrainingSimulator(Cluster(num_gpus=8), workload).sharded_feasible()


class TestWorkloadValidationCorners:
    def test_unique_row_factor_bounds(self):
        workload = characterize(workload_by_name("RMC2"))
        with pytest.raises(ValueError):
            replace(workload, unique_row_factor=0.0)
        with pytest.raises(ValueError):
            replace(workload, unique_row_factor=1.5)

    def test_batches_per_epoch_floor(self):
        workload = characterize(workload_by_name("RMC2"))
        tiny = replace(workload, num_samples=10)
        assert tiny.batches_per_epoch(4) == 1  # floored at one batch


class TestCharacterizeTBSMFromPlan:
    def test_rmc1_plan_roundtrip(self):
        from repro.core import FAEConfig, fae_preprocess
        from repro.data import SyntheticClickLog, SyntheticConfig, taobao_like
        from repro.hw.workload import characterize_from_plan

        schema = taobao_like("tiny")
        log = SyntheticClickLog(schema, SyntheticConfig(num_samples=2500, seed=1))
        config = FAEConfig(
            gpu_memory_budget=48 * 1024, large_table_min_bytes=512, chunk_size=16
        )
        plan = fae_preprocess(log, config, batch_size=64)
        workload = characterize_from_plan(workload_by_name("RMC1"), plan, schema)
        # TBSM-specific character: heavy dispatch, chunked transfers,
        # per-timestep CPU ops.
        assert workload.dispatch_seconds > 0.01
        assert workload.transfer_events > 1
        assert workload.cpu_ops_per_phase > workload.num_tables
        assert workload.lookup_rows_per_sample == 43


class TestCLIAllDatasets:
    @pytest.mark.parametrize("dataset", ["taobao", "criteo-terabyte"])
    def test_train_fae_runs(self, dataset, capsys):
        from repro.cli import main

        code = main(
            [
                "train",
                dataset,
                "--mode",
                "fae",
                "--samples",
                "2500",
                "--epochs",
                "1",
                "--batch-size",
                "128",
                "--scale",
                "tiny",
                "--budget-bytes",
                str(64 * 1024),
                "--large-table-min-bytes",
                "512",
            ]
        )
        assert code == 0
        assert "FAE:" in capsys.readouterr().out
