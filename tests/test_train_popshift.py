"""Tests for the popularity-shift scenario (repro.train.popshift)."""

import json

import pytest

from repro.train.popshift import (
    POPSHIFT_SCHEMA_VERSION,
    PopShiftConfig,
    run_popularity_shift,
)

#: CI-sized shape: two rotated days, ~0.3s per run, margins still visible.
QUICK = dict(num_days=3, shift_day=1, samples_per_day=600, seed=7)


@pytest.fixture(scope="module")
def quick_report():
    return run_popularity_shift(PopShiftConfig(**QUICK))


class TestConfig:
    def test_defaults_are_valid(self):
        PopShiftConfig()

    def test_shift_day_must_be_inside_run(self):
        with pytest.raises(ValueError):
            PopShiftConfig(num_days=4, shift_day=0)
        with pytest.raises(ValueError):
            PopShiftConfig(num_days=4, shift_day=4)

    def test_budget_must_sit_between_costs(self):
        with pytest.raises(ValueError):
            PopShiftConfig(hot_batch_cost=1.0, cold_batch_cost=3.0, budget_per_batch=4.0)
        with pytest.raises(ValueError):
            PopShiftConfig(hot_batch_cost=2.0, cold_batch_cost=1.0)


class TestReport:
    def test_schema_and_shape(self, quick_report):
        r = quick_report
        assert r["schema_version"] == POPSHIFT_SCHEMA_VERSION
        assert r["kind"] == "popshift_report"
        assert len(r["days"]) == QUICK["num_days"] - 1
        for day in r["days"]:
            assert set(day) >= {"day", "rotated", "static", "cached", "drift", "turnover"}
        assert set(r["post_shift"]) >= {
            "hit_margin",
            "accuracy_margin",
            "loss_margin",
            "static_hit_rate",
            "cached_hit_rate",
        }

    def test_cache_recovers_hit_rate_static_degrades(self, quick_report):
        post = quick_report["post_shift"]
        assert post["hit_margin"] > 0.2
        assert post["cached_hit_rate"] > post["static_hit_rate"]
        # The last rotated day's cache membership beats the frozen set.
        last = quick_report["days"][-1]
        assert last["cached"]["hit_rate"] > last["static"]["hit_rate"]

    def test_turnover_and_counters_flow(self, quick_report):
        counters = quick_report["counters"]
        assert counters["hotcache.promotions"] > 0
        assert counters["hotcache.hits"] > 0
        assert counters["hotcache.rebalances"] > 0
        assert quick_report["cache"]["rebalances"] > 0
        # Turnover shows up in the day reports and the recalibration diff.
        assert any(d["turnover"] for d in quick_report["days"])
        assert sum(e["added"] for e in quick_report["recalibration"].values()) > 0

    def test_rotated_days_flag_drift(self, quick_report):
        for day in quick_report["days"]:
            assert day["drift"]["drifted"] == day["rotated"]

    def test_budget_caps_simulated_seconds(self, quick_report):
        config = PopShiftConfig(**QUICK)
        for day in quick_report["days"]:
            for arm in ("static", "cached"):
                entry = day[arm]
                budget = config.budget_per_batch * entry["batches_packed"]
                assert entry["sim_seconds"] <= budget + 1e-9

    def test_deterministic_per_seed(self, quick_report):
        rerun = run_popularity_shift(PopShiftConfig(**QUICK))
        assert json.dumps(quick_report, sort_keys=True) == json.dumps(
            rerun, sort_keys=True
        )

    def test_seed_changes_report(self, quick_report):
        other = run_popularity_shift(PopShiftConfig(**{**QUICK, "seed": 9}))
        assert (
            other["post_shift"]["cached_hit_rate"]
            != quick_report["post_shift"]["cached_hit_rate"]
        )

    def test_shard_dir_roundtrip_matches_tempdir(self, quick_report, tmp_path):
        explicit = run_popularity_shift(
            PopShiftConfig(**QUICK), shard_dir=str(tmp_path)
        )
        assert json.dumps(explicit, sort_keys=True) == json.dumps(
            quick_report, sort_keys=True
        )
