"""Unit tests for metrics, history, and the two trainers."""

import numpy as np
import pytest

from repro.core import fae_preprocess
from repro.data import train_test_split
from repro.train import (
    BaselineTrainer,
    FAETrainer,
    HistoryPoint,
    TrainingHistory,
    binary_accuracy,
    evaluate_model,
)


class TestBinaryAccuracy:
    def test_perfect(self):
        assert binary_accuracy(np.array([5.0, -5.0]), np.array([1.0, 0.0])) == 1.0

    def test_all_wrong(self):
        assert binary_accuracy(np.array([5.0, -5.0]), np.array([0.0, 1.0])) == 0.0

    def test_threshold(self):
        assert binary_accuracy(np.array([0.0]), np.array([1.0])) == 1.0  # 0.5 >= 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            binary_accuracy(np.zeros(2), np.zeros(3))


class TestTrainingHistory:
    def point(self, i, loss=1.0):
        return HistoryPoint(
            iteration=i, train_loss=loss, test_loss=loss, test_accuracy=0.5, train_accuracy=0.5
        )

    def test_record_and_final(self):
        history = TrainingHistory()
        history.record(self.point(1))
        history.record(self.point(2, 0.9))
        assert len(history) == 2
        assert history.final.iteration == 2

    def test_monotone_iterations_enforced(self):
        history = TrainingHistory()
        history.record(self.point(5))
        with pytest.raises(ValueError):
            history.record(self.point(4))

    def test_empty_final_raises(self):
        with pytest.raises(ValueError):
            TrainingHistory().final

    def test_series(self):
        history = TrainingHistory()
        for i, loss in enumerate([1.0, 0.8, 0.6], start=1):
            history.record(self.point(i * 10, loss))
        iters, losses = history.series("test_loss")
        np.testing.assert_array_equal(iters, [10, 20, 30])
        np.testing.assert_allclose(losses, [1.0, 0.8, 0.6])

    def test_best_accuracy(self):
        history = TrainingHistory()
        history.record(HistoryPoint(1, 1, 1, 0.6, 0.5))
        history.record(HistoryPoint(2, 1, 1, 0.55, 0.5))
        assert history.best_test_accuracy() == 0.6

    def test_converged(self):
        history = TrainingHistory()
        for i, loss in enumerate([1.0, 0.5001, 0.5002, 0.5001, 0.5], start=1):
            history.record(self.point(i, loss))
        assert history.converged(window=3, tolerance=5e-3)
        assert not history.converged(window=4, tolerance=1e-6)


@pytest.fixture(scope="module")
def training_setup(request):
    tiny_log = request.getfixturevalue("tiny_log")
    tiny_config = request.getfixturevalue("tiny_fae_config")
    train, test = train_test_split(tiny_log, 0.15, seed=2)
    plan = fae_preprocess(train, tiny_config, batch_size=64)
    schema = tiny_log.schema
    return schema, train, test, plan


def fresh_model(schema, seed=21):
    from repro.models.dlrm import DLRM, DLRMConfig

    return DLRM(schema, DLRMConfig(bottom_mlp="4-8", top_mlp="8-1", seed=seed))


class TestEvaluateModel:
    def test_returns_loss_and_accuracy(self, training_setup):
        schema, train, test, _plan = training_setup
        model = fresh_model(schema)
        loss, acc = evaluate_model(model, test)
        assert loss > 0
        assert 0 <= acc <= 1

    def test_max_samples_cap(self, training_setup):
        schema, train, test, _ = training_setup
        model = fresh_model(schema)
        loss_small, _ = evaluate_model(model, test, max_samples=64)
        assert np.isfinite(loss_small)


class TestBaselineTrainer:
    def test_improves_over_initial(self, training_setup):
        schema, train, test, _ = training_setup
        model = fresh_model(schema)
        _, initial_acc = evaluate_model(model, test)
        result = BaselineTrainer(model, lr=0.2).train(
            train, test, epochs=2, batch_size=64, eval_every=10
        )
        assert result.final_test_accuracy > initial_acc

    def test_history_populated(self, training_setup):
        schema, train, test, _ = training_setup
        model = fresh_model(schema)
        result = BaselineTrainer(model, lr=0.2).train(
            train, test, epochs=1, batch_size=64, eval_every=10
        )
        assert len(result.history) >= 2
        assert result.history.final.segment_kind == "mixed"
        assert result.sync_events == 0

    def test_rejects_zero_epochs(self, training_setup):
        schema, train, test, _ = training_setup
        with pytest.raises(ValueError):
            BaselineTrainer(fresh_model(schema)).train(train, test, epochs=0)


class TestFAETrainer:
    def test_matches_baseline_accuracy(self, training_setup):
        """Table III's claim: FAE achieves baseline accuracy."""
        schema, train, test, plan = training_setup
        baseline_model = fresh_model(schema, seed=33)
        baseline = BaselineTrainer(baseline_model, lr=0.2).train(
            train, test, epochs=2, batch_size=64, eval_every=20
        )
        fae_model = fresh_model(schema, seed=33)
        fae = FAETrainer(fae_model, plan, lr=0.2).train(train, test, epochs=2)
        assert fae.final_test_accuracy >= baseline.final_test_accuracy - 0.03

    def test_sync_events_recorded(self, training_setup):
        schema, train, test, plan = training_setup
        result = FAETrainer(fresh_model(schema), plan, lr=0.2).train(train, test, epochs=1)
        assert result.sync_events > 0
        assert result.sync_bytes > 0

    def test_schedule_rates_tracked(self, training_setup):
        schema, train, test, plan = training_setup
        result = FAETrainer(fresh_model(schema), plan, lr=0.2).train(train, test, epochs=1)
        assert result.schedule_rates
        assert all(1 <= r <= 100 for r in result.schedule_rates)

    def test_history_has_hot_and_cold_segments(self, training_setup):
        schema, train, test, plan = training_setup
        result = FAETrainer(fresh_model(schema), plan, lr=0.2).train(train, test, epochs=1)
        kinds = {p.segment_kind for p in result.history.points}
        assert "hot" in kinds and "cold" in kinds

    def test_hot_updates_propagate_to_master(self, training_setup):
        """After training, the master tables must include hot-row updates."""
        schema, train, test, plan = training_setup
        model = fresh_model(schema, seed=5)
        before = {n: t.weight.value.copy() for n, t in model.tables.items()}
        FAETrainer(model, plan, lr=0.2).train(train, test, epochs=1)
        changed = any(
            not np.allclose(model.tables[n].weight.value, before[n]) for n in before
        )
        assert changed

    def test_multi_replica_consistency(self, training_setup):
        schema, train, test, plan = training_setup
        trainer = FAETrainer(fresh_model(schema, seed=6), plan, lr=0.2, num_replicas=3)
        trainer.train(train, test, epochs=1)
        assert trainer.replicator.max_replica_divergence() == 0.0

    def test_rejects_zero_epochs(self, training_setup):
        schema, train, test, plan = training_setup
        with pytest.raises(ValueError):
            FAETrainer(fresh_model(schema), plan).train(train, test, epochs=0)
