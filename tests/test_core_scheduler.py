"""Unit tests for the Shuffle Scheduler (paper Eq. 7)."""

import pytest

from repro.core import ShuffleScheduler


def drain(scheduler):
    return list(scheduler.segments())


class TestPlanning:
    def test_starts_cold(self):
        scheduler = ShuffleScheduler(10, 10, initial_rate=50)
        assert scheduler.next_segment().kind == "cold"

    def test_alternates(self):
        scheduler = ShuffleScheduler(10, 10, initial_rate=50)
        kinds = [s.kind for s in drain(scheduler)]
        assert kinds == ["cold", "hot", "cold", "hot"]

    def test_all_batches_issued_exactly_once(self):
        scheduler = ShuffleScheduler(37, 23, initial_rate=30)
        segments = drain(scheduler)
        assert sum(s.num_batches for s in segments if s.kind == "hot") == 37
        assert sum(s.num_batches for s in segments if s.kind == "cold") == 23

    def test_rate_100_is_two_blocks(self):
        scheduler = ShuffleScheduler(10, 10, initial_rate=100)
        segments = drain(scheduler)
        assert [s.kind for s in segments] == ["cold", "hot"]
        assert scheduler.transitions == 1

    def test_rate_1_fine_interleaving(self):
        scheduler = ShuffleScheduler(100, 100, initial_rate=1)
        segments = drain(scheduler)
        assert len(segments) == 200
        assert all(s.num_batches == 1 for s in segments)

    def test_empty_hot_pool(self):
        scheduler = ShuffleScheduler(0, 5, initial_rate=50)
        segments = drain(scheduler)
        assert all(s.kind == "cold" for s in segments)
        assert sum(s.num_batches for s in segments) == 5

    def test_empty_cold_pool(self):
        scheduler = ShuffleScheduler(5, 0, initial_rate=50)
        segments = drain(scheduler)
        assert all(s.kind == "hot" for s in segments)

    def test_exhausted_flag(self):
        scheduler = ShuffleScheduler(4, 4, initial_rate=100)
        drain(scheduler)
        assert scheduler.exhausted
        assert scheduler.next_segment() is None

    def test_reset_epoch_refills(self):
        scheduler = ShuffleScheduler(4, 4, initial_rate=100)
        drain(scheduler)
        scheduler.reset_epoch()
        assert not scheduler.exhausted
        assert sum(s.num_batches for s in drain(scheduler)) == 8

    def test_transition_count(self):
        scheduler = ShuffleScheduler(20, 20, initial_rate=25)
        drain(scheduler)
        # 4 cold + 4 hot segments alternating -> 7 transitions
        assert scheduler.transitions == 7


class TestRateAdaptation:
    def test_loss_increase_halves_rate(self):
        scheduler = ShuffleScheduler(100, 100, initial_rate=40)
        scheduler.next_segment()
        scheduler.record_test_loss(1.0)
        scheduler.next_segment()
        scheduler.record_test_loss(1.1)  # worse
        assert scheduler.rate == 20

    def test_rate_floor_r1(self):
        scheduler = ShuffleScheduler(100, 100, initial_rate=2)
        scheduler.record_test_loss(1.0)
        for loss in (1.1, 1.2, 1.3):
            scheduler.record_test_loss(loss)
        assert scheduler.rate == 1

    def test_u_consecutive_improvements_double_rate(self):
        scheduler = ShuffleScheduler(100, 100, initial_rate=10, strip_length=4)
        scheduler.record_test_loss(1.0)
        for loss in (0.9, 0.8, 0.7, 0.6):
            scheduler.record_test_loss(loss)
        assert scheduler.rate == 20

    def test_improvement_streak_resets_on_increase(self):
        scheduler = ShuffleScheduler(100, 100, initial_rate=10, strip_length=4)
        scheduler.record_test_loss(1.0)
        for loss in (0.9, 0.8, 0.85, 0.7, 0.6, 0.5):
            scheduler.record_test_loss(loss)
        # the 0.85 increase halved the rate (10 -> 5) and reset the streak;
        # only three improvements follow, so no doubling yet.
        assert scheduler.rate == 5

    def test_rate_cap_r100(self):
        scheduler = ShuffleScheduler(100, 100, initial_rate=80, strip_length=1)
        scheduler.record_test_loss(1.0)
        scheduler.record_test_loss(0.9)
        scheduler.record_test_loss(0.8)
        assert scheduler.rate == 100

    def test_flat_loss_keeps_rate(self):
        scheduler = ShuffleScheduler(100, 100, initial_rate=30, strip_length=10)
        scheduler.record_test_loss(1.0)
        scheduler.record_test_loss(1.0)
        assert scheduler.rate == 30

    def test_history_records_loss(self):
        scheduler = ShuffleScheduler(10, 10, initial_rate=50)
        scheduler.next_segment()
        scheduler.record_test_loss(0.5)
        assert scheduler.history[-1].test_loss == 0.5

    def test_rate_change_affects_future_segments(self):
        scheduler = ShuffleScheduler(100, 100, initial_rate=50)
        first = scheduler.next_segment()
        assert first.num_batches == 50
        scheduler.record_test_loss(1.0)
        scheduler.next_segment()
        scheduler.record_test_loss(2.0)  # halve to 25
        nxt = scheduler.next_segment()
        assert nxt.num_batches == 25


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_hot_batches=-1, num_cold_batches=0),
            dict(num_hot_batches=1, num_cold_batches=1, initial_rate=0),
            dict(num_hot_batches=1, num_cold_batches=1, initial_rate=101),
            dict(num_hot_batches=1, num_cold_batches=1, strip_length=0),
        ],
    )
    def test_rejects(self, kwargs):
        defaults = dict(num_hot_batches=1, num_cold_batches=1)
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            ShuffleScheduler(**defaults)
