"""Tests for the distributed substrate: collectives, data parallelism,
and the distributed FAE trainer's equivalence to single-device FAE."""

import numpy as np
import pytest

from repro.core import fae_preprocess
from repro.data import train_test_split
from repro.data.loader import batch_from_log
from repro.dist import (
    DataParallelTrainer,
    DistributedFAETrainer,
    ProcessGroup,
    ReduceOp,
    shard_batch,
)
from repro.models.dlrm import DLRM, DLRMConfig
from repro.nn import BCEWithLogits, SGD
from repro.resilience import CheckpointManager, FaultPlan, load_checkpoint
from repro.train import FAETrainer


class TestProcessGroup:
    def test_all_reduce_sum(self, rng):
        group = ProcessGroup(world_size=3)
        buffers = [rng.normal(size=(4, 5)).astype(np.float32) for _ in range(3)]
        results = group.all_reduce(buffers, ReduceOp.SUM)
        expected = sum(b.astype(np.float64) for b in buffers)
        for r in results:
            np.testing.assert_allclose(r, expected, rtol=1e-5)

    def test_all_reduce_mean(self, rng):
        group = ProcessGroup(world_size=4)
        buffers = [rng.normal(size=7).astype(np.float32) for _ in range(4)]
        results = group.all_reduce(buffers, ReduceOp.MEAN)
        expected = np.mean([b.astype(np.float64) for b in buffers], axis=0)
        np.testing.assert_allclose(results[2], expected, rtol=1e-5)

    def test_all_reduce_max(self, rng):
        group = ProcessGroup(world_size=2)
        buffers = [np.array([1.0, 5.0]), np.array([3.0, 2.0])]
        results = group.all_reduce(buffers, ReduceOp.MAX)
        np.testing.assert_allclose(results[0], [3.0, 5.0])

    def test_all_ranks_identical(self, rng):
        group = ProcessGroup(world_size=5)
        buffers = [rng.normal(size=13).astype(np.float32) for _ in range(5)]
        results = group.all_reduce(buffers)
        for r in results[1:]:
            np.testing.assert_array_equal(r, results[0])

    def test_single_rank_identity(self):
        group = ProcessGroup(world_size=1)
        buf = np.arange(4.0)
        np.testing.assert_allclose(group.all_reduce([buf])[0], buf)

    def test_traffic_accounting(self, rng):
        group = ProcessGroup(world_size=4)
        buf = np.zeros(1000, dtype=np.float32)
        group.all_reduce([buf.copy() for _ in range(4)])
        # Ring volume: 2 (k-1)/k of the buffer.
        assert group.bytes_communicated == pytest.approx(4000 * 2 * 3 / 4)
        assert group.collective_calls == 1

    def test_broadcast(self):
        group = ProcessGroup(world_size=3)
        results = group.broadcast(np.array([1.0, 2.0]))
        assert len(results) == 3
        results[1][0] = 99  # copies, not views
        assert results[0][0] == 1.0

    def test_all_gather(self, rng):
        group = ProcessGroup(world_size=2)
        a, b = np.array([1.0]), np.array([2.0])
        results = group.all_gather([a, b])
        np.testing.assert_allclose(results[0], [[1.0], [2.0]])

    def test_reduce_scatter(self):
        group = ProcessGroup(world_size=2)
        bufs = [np.array([1.0, 2.0]), np.array([3.0, 4.0])]
        shards = group.reduce_scatter(bufs)
        np.testing.assert_allclose(shards[0], [4.0])
        np.testing.assert_allclose(shards[1], [6.0])

    def test_shape_mismatch_rejected(self):
        group = ProcessGroup(world_size=2)
        with pytest.raises(ValueError):
            group.all_reduce([np.zeros(2), np.zeros(3)])

    def test_wrong_rank_count_rejected(self):
        group = ProcessGroup(world_size=2)
        with pytest.raises(ValueError):
            group.all_reduce([np.zeros(2)])

    def test_bad_world_size(self):
        with pytest.raises(ValueError):
            ProcessGroup(world_size=0)


class TestShardBatch:
    def test_even_split(self, tiny_log):
        batch = batch_from_log(tiny_log, np.arange(64))
        shards = shard_batch(batch, 4)
        assert len(shards) == 4
        assert all(len(s) == 16 for s in shards)
        recombined = np.concatenate([s.indices for s in shards])
        np.testing.assert_array_equal(recombined, batch.indices)

    def test_indivisible_rejected(self, tiny_log):
        batch = batch_from_log(tiny_log, np.arange(10))
        with pytest.raises(ValueError):
            shard_batch(batch, 4)

    def test_hot_tag_preserved(self, tiny_log):
        batch = batch_from_log(tiny_log, np.arange(8), hot=True)
        assert all(s.hot for s in shard_batch(batch, 2))


def small_dlrm(tiny_schema, seed=3):
    return DLRM(tiny_schema, DLRMConfig("4-8", "8-1", seed=seed))


class TestDataParallelTrainer:
    def test_replicas_stay_identical(self, tiny_schema, tiny_log):
        replicas = [small_dlrm(tiny_schema) for _ in range(3)]
        trainer = DataParallelTrainer(replicas, lr=0.1)
        for start in range(0, 192, 48):
            batch = batch_from_log(tiny_log, np.arange(start, start + 48))
            trainer.step(batch)
        assert trainer.max_divergence() < 1e-6

    def test_equivalent_to_single_device(self, tiny_schema, tiny_log):
        """k-way data parallelism == full-batch single-device training."""
        single = small_dlrm(tiny_schema, seed=5)
        loss_fn = BCEWithLogits()
        optimizer = SGD(single.parameters(), lr=0.1)
        for start in range(0, 128, 32):
            batch = batch_from_log(tiny_log, np.arange(start, start + 32))
            logits = single.forward(batch)
            loss_fn.forward(logits, batch.labels)
            single.backward(loss_fn.backward())
            optimizer.step()

        replicas = [small_dlrm(tiny_schema, seed=5) for _ in range(4)]
        trainer = DataParallelTrainer(replicas, lr=0.1)
        for start in range(0, 128, 32):
            trainer.step(batch_from_log(tiny_log, np.arange(start, start + 32)))

        for p, q in zip(single.parameters(), replicas[0].parameters()):
            np.testing.assert_allclose(p.value, q.value, rtol=1e-4, atol=1e-5)

    def test_loss_reported(self, tiny_schema, tiny_log):
        trainer = DataParallelTrainer([small_dlrm(tiny_schema) for _ in range(2)], lr=0.1)
        stats = trainer.step(batch_from_log(tiny_log, np.arange(32)))
        assert np.isfinite(stats.loss)
        assert stats.grad_bytes_reduced > 0

    def test_mismatched_replicas_rejected(self, tiny_schema):
        a = small_dlrm(tiny_schema, seed=1)
        b = small_dlrm(tiny_schema, seed=2)  # different init
        with pytest.raises(ValueError):
            DataParallelTrainer([a, b])

    def test_empty_replicas_rejected(self):
        with pytest.raises(ValueError):
            DataParallelTrainer([])


@pytest.fixture(scope="module")
def fae_setup(request):
    tiny_log = request.getfixturevalue("tiny_log")
    config = request.getfixturevalue("tiny_fae_config")
    train, test = train_test_split(tiny_log, 0.2, seed=4)
    # drop_last keeps every batch at exactly 64 samples, so 2- and 4-way
    # sharding is exact and the single-device equivalence is bit-tight.
    plan = fae_preprocess(train, config, batch_size=64, drop_last=True)
    return tiny_log.schema, train, test, plan


class TestDistributedFAETrainer:
    def test_trains_and_tracks_syncs(self, fae_setup):
        schema, train, test, plan = fae_setup
        replicas = [small_dlrm(schema, seed=7) for _ in range(2)]
        trainer = DistributedFAETrainer(replicas, plan, lr=0.15)
        result = trainer.train(train, test, epochs=1)
        assert result.sync_events > 0
        assert np.isfinite(result.final_test_accuracy)

    def test_dense_replicas_converge_identically(self, fae_setup):
        schema, train, test, plan = fae_setup
        replicas = [small_dlrm(schema, seed=7) for _ in range(3)]
        trainer = DistributedFAETrainer(replicas, plan, lr=0.15)
        trainer.train(train, test, epochs=1)
        assert trainer.max_dense_divergence() < 1e-5
        assert trainer.max_hot_divergence() == 0.0

    def test_equivalent_to_single_device_fae(self, fae_setup):
        """k-GPU FAE == single-device FAE (same plan, same batch order)."""
        schema, train, test, plan = fae_setup

        single_model = small_dlrm(schema, seed=9)
        FAETrainer(single_model, plan, lr=0.1).train(train, test, epochs=1)

        replicas = [small_dlrm(schema, seed=9) for _ in range(2)]
        trainer = DistributedFAETrainer(replicas, plan, lr=0.1)
        trainer.train(train, test, epochs=1)

        for name in single_model.tables:
            np.testing.assert_allclose(
                replicas[0].tables[name].weight.value,
                single_model.tables[name].weight.value,
                rtol=1e-3,
                atol=1e-4,
            )
        for p, q in zip(single_model.dense_parameters(), replicas[0].dense_parameters()):
            np.testing.assert_allclose(q.value, p.value, rtol=1e-3, atol=1e-4)

    def test_accuracy_matches_baseline_band(self, fae_setup):
        schema, train, test, plan = fae_setup
        replicas = [small_dlrm(schema, seed=11) for _ in range(2)]
        result = DistributedFAETrainer(replicas, plan, lr=0.15).train(train, test, epochs=2)
        majority = max(test.base_rate(), 1 - test.base_rate())
        assert result.final_test_accuracy > majority - 0.02

    def test_rejects_empty_replicas(self, fae_setup):
        _schema, _train, _test, plan = fae_setup
        with pytest.raises(ValueError):
            DistributedFAETrainer([], plan)


class TestShrinkCheckpointResume:
    def test_resume_after_shrink_reproduces_trajectory(self, tmp_path, fae_setup):
        """world-shrink (3 → 2) x checkpoint x resume, end to end.

        A run that loses a rank keeps checkpointing at the shrunk world
        size; resuming one of those checkpoints in a *fresh* 2-replica
        trainer (differently seeded, so the restore has to overwrite
        everything) must reproduce the shrunk run's loss trajectory
        exactly — parameters, cursors, and scheduler state all round-trip.
        """
        schema, train, test, plan = fae_setup
        manager = CheckpointManager(tmp_path, every=1, keep=None)
        trainer = DistributedFAETrainer(
            [small_dlrm(schema, seed=7) for _ in range(3)],
            plan,
            lr=0.15,
            fault_plan=FaultPlan(seed=7, rank_death=(1, 10)),
        )
        full = trainer.train(train, test, epochs=1, checkpoint=manager)
        assert full.world_shrinks == 1
        assert trainer.world_size == 2

        # Pick the first checkpoint taken after the shrink: its metadata
        # records the world size the segment actually trained at.
        shrunk = None
        for path in sorted(tmp_path.glob("ckpt-*.npz")):
            if load_checkpoint(path).metadata.get("world_size") == 2:
                shrunk = path
                break
        assert shrunk is not None, "no post-shrink checkpoint was captured"

        resumed = DistributedFAETrainer(
            [small_dlrm(schema, seed=777 + i) for i in range(2)], plan, lr=0.15
        ).train(train, test, epochs=1, resume=shrunk)

        full_points = full.history.points
        resumed_points = resumed.history.points
        tail = full_points[len(full_points) - len(resumed_points) :]
        assert len(tail) == len(resumed_points)
        for expected, got in zip(tail, resumed_points):
            assert got.iteration == expected.iteration
            assert got.test_loss == pytest.approx(expected.test_loss, abs=1e-12)
            assert got.train_loss == pytest.approx(expected.train_loss, abs=1e-12)
        assert resumed.final_test_accuracy == pytest.approx(full.final_test_accuracy)
