"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.train import roc_auc


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["info", "movielens"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["info", "taobao"],
            ["preprocess", "criteo-kaggle", "--samples", "100"],
            ["train", "taobao", "--mode", "fae", "--epochs", "1"],
            ["simulate", "RMC3", "--gpus", "2"],
        ],
    )
    def test_accepts_valid_commands(self, argv):
        args = build_parser().parse_args(argv)
        assert args.command == argv[0]


class TestInfo:
    def test_prints_geometry(self, capsys):
        assert main(["info", "taobao", "--scale", "paper"]) == 0
        out = capsys.readouterr().out
        assert "taobao" in out
        assert "lookups/sample: 43" in out

    def test_numeric_scale(self, capsys):
        assert main(["info", "criteo-kaggle", "--scale", "0.001"]) == 0
        assert "criteo-kaggle" in capsys.readouterr().out


class TestPreprocess:
    def test_runs_and_writes(self, capsys, tmp_path):
        out_file = tmp_path / "plan.npz"
        code = main(
            [
                "preprocess",
                "criteo-kaggle",
                "--samples",
                "5000",
                "--batch-size",
                "128",
                "--out",
                str(out_file),
            ]
        )
        assert code == 0
        assert out_file.exists()
        out = capsys.readouterr().out
        assert "threshold" in out
        from repro.core import load_fae_dataset

        dataset, _bags, _threshold = load_fae_dataset(out_file)
        total = sum(len(b) for b in dataset.hot_batches + dataset.cold_batches)
        assert total == 5000


class TestTrain:
    def test_fae_mode(self, capsys):
        code = main(
            [
                "train",
                "criteo-kaggle",
                "--mode",
                "fae",
                "--samples",
                "4000",
                "--epochs",
                "1",
                "--batch-size",
                "128",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FAE:" in out
        assert "AUC" in out

    def test_both_modes(self, capsys):
        code = main(
            [
                "train",
                "criteo-kaggle",
                "--mode",
                "both",
                "--samples",
                "3000",
                "--epochs",
                "1",
                "--batch-size",
                "128",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "baseline:" in out and "FAE:" in out


class TestTrainResilience:
    CHAOS = [
        "train",
        "criteo-kaggle",
        "--mode",
        "fae",
        "--samples",
        "2000",
        "--epochs",
        "1",
        "--batch-size",
        "128",
        "--gpus",
        "2",
        "--faults",
        "seed=7,collective=0.05,death=1@10,evict=15,loader=0.02",
    ]

    def test_chaos_run_reports_summary(self, capsys, tmp_path):
        code = main(self.CHAOS + ["--checkpoint-dir", str(tmp_path / "ckpts")])
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos:" in out
        assert "world shrinks" in out
        assert list((tmp_path / "ckpts").glob("ckpt-*.npz"))

    def test_resume_picks_up_latest_checkpoint(self, capsys, tmp_path):
        ckpt_dir = str(tmp_path / "ckpts")
        assert main(self.CHAOS + ["--checkpoint-dir", ckpt_dir]) == 0
        capsys.readouterr()
        assert main(self.CHAOS + ["--checkpoint-dir", ckpt_dir, "--resume"]) == 0
        assert "resuming from" in capsys.readouterr().out

    def test_resume_without_checkpoints_starts_fresh(self, capsys, tmp_path):
        argv = self.CHAOS + ["--checkpoint-dir", str(tmp_path / "empty"), "--resume"]
        assert main(argv) == 0
        assert "starting fresh" in capsys.readouterr().out

    def test_resume_requires_checkpoint_dir(self, capsys):
        assert main(self.CHAOS + ["--resume"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_faults_require_fae_mode(self, capsys):
        argv = [
            "train",
            "criteo-kaggle",
            "--mode",
            "baseline",
            "--samples",
            "2000",
            "--faults",
            "seed=1",
        ]
        assert main(argv) == 2
        assert "fae" in capsys.readouterr().err


class TestTrainGuards:
    BASE = [
        "train",
        "criteo-kaggle",
        "--mode",
        "fae",
        "--samples",
        "2000",
        "--epochs",
        "1",
        "--batch-size",
        "128",
        "--gpus",
        "2",
    ]

    def test_guarded_chaos_run_completes(self, capsys, tmp_path):
        argv = self.BASE + [
            "--guards",
            "rollbacks=2,skips=6",
            "--validate",
            "quarantine",
            "--quarantine-dir",
            str(tmp_path / "quarantine"),
            "--checkpoint-dir",
            str(tmp_path / "ckpts"),
            "--faults",
            "seed=7,ingest=0.01,bad_row=5,corrupt=bitflip,bad_batch=0.05,max_bad_batch=3",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "quarantined" in out
        assert "guards: rollbacks" in out

        ledger = tmp_path / "quarantine" / "quarantine.jsonl"
        entries = [json.loads(line) for line in ledger.read_text().splitlines()]
        assert entries
        assert all("reasons" in entry for entry in entries)

    def test_rollback_budget_exhaustion_exits_3_with_hints(self, capsys, tmp_path):
        argv = self.BASE + [
            "--guards",
            "rollbacks=0,skips=2",
            "--checkpoint-dir",
            str(tmp_path / "ckpts"),
            "--faults",
            "seed=7,bad_row=5,corrupt=bitflip",
        ]
        assert main(argv) == 3
        err = capsys.readouterr().err
        assert "GuardAbort[numeric]" in err
        # The error must be actionable: tell the operator which knob to turn.
        assert "--guards rollbacks=" in err

    def test_guards_require_fae_mode(self, capsys):
        argv = [
            "train",
            "criteo-kaggle",
            "--mode",
            "baseline",
            "--samples",
            "2000",
            "--guards",
            "rollbacks=1",
        ]
        assert main(argv) == 2
        assert "fae" in capsys.readouterr().err

    def test_quarantine_policy_requires_dir(self, capsys):
        argv = self.BASE + ["--validate", "quarantine"]
        assert main(argv) == 1
        assert "--quarantine-dir" in capsys.readouterr().err

    def test_preprocess_accepts_validate_policy(self):
        argv = [
            "preprocess",
            "criteo-kaggle",
            "--samples",
            "1000",
            "--validate",
            "clamp",
        ]
        assert main(argv) == 0


class TestErrorHandling:
    BAD_SPEC = [
        "train",
        "criteo-kaggle",
        "--mode",
        "fae",
        "--samples",
        "2000",
        "--faults",
        "bogus=1",
    ]

    def test_failures_exit_nonzero_with_one_line_error(self, capsys):
        assert main(self.BAD_SPEC) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1

    def test_traceback_flag_reraises(self):
        with pytest.raises(ValueError):
            main(["--traceback"] + self.BAD_SPEC)


class TestSimulate:
    def test_all_modes_reported(self, capsys):
        assert main(["simulate", "RMC2", "--gpus", "2"]) == 0
        out = capsys.readouterr().out
        for token in ("baseline", "fae", "nvopt", "speedup"):
            assert token in out

    def test_budget_knob(self, capsys):
        main(["simulate", "RMC3", "--gpus", "1", "--budget-mb", "64"])
        out64 = capsys.readouterr().out
        main(["simulate", "RMC3", "--gpus", "1", "--budget-mb", "1024"])
        out1024 = capsys.readouterr().out

        def hot_pct(text):
            return float(text.split("hot inputs ")[1].split("%")[0])

        assert hot_pct(out1024) > hot_pct(out64)


class TestRocAuc:
    def test_perfect_ranking(self):
        assert roc_auc(np.array([3.0, 2.0, -1.0]), np.array([1, 1, 0])) == 1.0

    def test_inverted_ranking(self):
        assert roc_auc(np.array([-3.0, 2.0]), np.array([1, 0])) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=20_000)
        labels = rng.integers(0, 2, size=20_000)
        assert roc_auc(logits, labels) == pytest.approx(0.5, abs=0.02)

    def test_ties_averaged(self):
        # All-equal scores -> AUC exactly 0.5 regardless of labels.
        assert roc_auc(np.zeros(10), np.array([1, 0] * 5)) == pytest.approx(0.5)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([1.0, 2.0]), np.array([1.0, 1.0]))

    def test_matches_pairwise_definition(self):
        rng = np.random.default_rng(3)
        logits = rng.normal(size=200)
        labels = rng.integers(0, 2, size=200).astype(float)
        pos = logits[labels == 1]
        neg = logits[labels == 0]
        wins = (pos[:, None] > neg[None, :]).sum() + 0.5 * (pos[:, None] == neg[None, :]).sum()
        expected = wins / (len(pos) * len(neg))
        assert roc_auc(logits, labels) == pytest.approx(expected, rel=1e-9)


class TestTraceCli:
    def _run_trace(self, tmp_path, *extra):
        out = tmp_path / "trace.jsonl"
        argv = [
            "trace",
            "run",
            "criteo-kaggle",
            "--scale",
            "tiny",
            "--rows",
            "512",
            "--out",
            str(out),
        ]
        assert main(argv + list(extra)) == 0
        return out

    def test_trace_run_then_analyze(self, tmp_path, capsys):
        out = self._run_trace(tmp_path)
        capsys.readouterr()
        assert main(["trace", "analyze", str(out)]) == 0
        text = capsys.readouterr().out
        assert "self-time coverage" in text
        assert "hotspots" in text
        assert "critical path" in text

    def test_trace_analyze_json_to_stdout(self, tmp_path, capsys):
        out = self._run_trace(tmp_path)
        capsys.readouterr()
        assert main(["trace", "analyze", str(out), "--json", "-"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "trace_analysis"
        assert doc["coverage"] == pytest.approx(1.0, abs=1e-6)

    def test_trace_analyze_json_to_file(self, tmp_path, capsys):
        out = self._run_trace(tmp_path)
        dest = tmp_path / "analysis.json"
        assert main(["trace", "analyze", str(out), "--json", str(dest)]) == 0
        doc = json.loads(dest.read_text(encoding="utf-8"))
        assert doc["spans"] > 0

    def test_bare_trace_back_compat_shim(self, tmp_path):
        # The pre-subcommand spelling `repro trace --rows N` still works.
        out = tmp_path / "trace.jsonl"
        argv = [
            "trace",
            "criteo-kaggle",
            "--scale",
            "tiny",
            "--rows",
            "512",
            "--out",
            str(out),
        ]
        assert main(argv) == 0
        assert out.exists()


class TestDriftCli:
    ARGS = [
        "drift",
        "--days",
        "3",
        "--shift-day",
        "1",
        "--samples-per-day",
        "600",
        "--seed",
        "7",
    ]

    def test_parser_accepts_drift(self):
        args = build_parser().parse_args(self.ARGS)
        assert args.command == "drift"
        assert args.dataset == "criteo-kaggle"
        assert args.days == 3

    def test_prints_summary_and_writes_report(self, tmp_path, capsys):
        out = tmp_path / "popshift.json"
        assert main(self.ARGS + ["--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "popularity shift" in text
        assert "post-shift" in text
        assert "hot-access hit rate" in text
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["kind"] == "popshift_report"
        assert report["seed"] == 7
        assert len(report["days"]) == 2

    def test_report_bytes_deterministic(self, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main(self.ARGS + ["--out", str(first)]) == 0
        assert main(self.ARGS + ["--out", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()


class TestServeBenchCli:
    ARGS = [
        "serve-bench",
        "--requests",
        "48",
        "--candidates",
        "64",
        "--scale",
        "tiny",
        "--seed",
        "5",
    ]

    def test_writes_report_and_prints_slo(self, tmp_path, capsys):
        out = tmp_path / "slo.json"
        assert main(self.ARGS + ["--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "slo report" in text
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["kind"] == "slo_report"
        assert report["requests"]["total"] == 48

    def test_default_out_lands_under_out_dir(self, tmp_path):
        out_dir = tmp_path / "bench-out"
        assert main(self.ARGS + ["--out-dir", str(out_dir)]) == 0
        assert (out_dir / "slo_report.json").exists()

    def test_slow_window_flag(self, tmp_path):
        out = tmp_path / "slo.json"
        # 512 candidates span several scoring chunks, so the injected
        # slow window actually accrues cost before the deadline check.
        argv = self.ARGS + [
            "--candidates",
            "512",
            "--slow",
            "8:40:100",
            "--out",
            str(out),
        ]
        assert main(argv) == 0
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["config"]["slow_start"] == 8
        assert report["config"]["slow_factor"] == 100.0
        assert report["requests"]["degraded"] + report["requests"]["shed"] > 0

    def test_cluster_path_with_faults_and_reload(self, tmp_path, capsys):
        out = tmp_path / "cluster_slo.json"
        argv = self.ARGS + [
            "--requests",
            "120",
            "--replicas",
            "3",
            "--hedge-after",
            "20",
            "--reload-at",
            "60",
            "--faults",
            "seed=7,kill_replica=1@40",
            "--out",
            str(out),
        ]
        assert main(argv) == 0
        text = capsys.readouterr().out
        assert "cluster slo report" in text
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["kind"] == "cluster_slo_report"
        assert report["replicas"] == 3
        assert report["requests"]["completed"] == report["requests"]["admitted"]
        assert report["failovers"] >= 1
        assert report["reload"]["complete"]
        assert report["reload"]["mixed_generation_responses"] == 0
