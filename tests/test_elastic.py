"""Tests for elastic real-process execution (repro.resilience.elastic).

Covers the supervisor's whole lifecycle — spawn, heartbeat liveness,
lease re-dispatch, speculation, poison-task quarantine, degradation —
plus the two integration guarantees the tentpole promises: a FAE plan
built under injected SIGKILL/straggler chaos is byte-identical to the
sequential one, and a distributed run that loses a rank re-admits it at
the next segment boundary and finishes at full world size.

The module-level ``_task_*`` functions below are addressed by workers as
``"tests.test_elastic:_task_..."`` kind strings (resolved by import in
the child process), so they must stay at module scope.
"""

import json
import time

import numpy as np
import pytest

from repro.core import fae_preprocess
from repro.data import train_test_split
from repro.dist import DistributedFAETrainer
from repro.models.dlrm import DLRM, DLRMConfig
from repro.obs.metrics import get_registry
from repro.resilience import (
    ElasticConfig,
    ElasticError,
    FaultPlan,
    QuarantineLedger,
    SupervisorEventLog,
    TaskQuarantinedError,
    WorkerPool,
)
from repro.resilience.elastic import ELASTIC_EVENT_VERSION, resolve_task


def counter_value(name: str) -> int:
    return get_registry().counter(name).value


# ----------------------------------------------------------------------
# Worker task functions (resolved by kind string inside worker processes)
# ----------------------------------------------------------------------


def _task_double(payload):
    return payload * 2


def _task_sleep_value(payload):
    time.sleep(payload.get("sleep", 0.0))
    return payload["value"]


def _task_boom(payload):
    raise RuntimeError(f"boom: {payload}")


# Short aliases for the kind strings used throughout.
DOUBLE = "tests.test_elastic:_task_double"
SLEEP_VALUE = "tests.test_elastic:_task_sleep_value"
BOOM = "tests.test_elastic:_task_boom"


# ----------------------------------------------------------------------
# Config and event log
# ----------------------------------------------------------------------


class TestElasticConfig:
    def test_defaults_are_inline(self):
        assert not ElasticConfig().process_mode
        assert not ElasticConfig(workers=1).process_mode
        assert ElasticConfig(workers=2).process_mode

    def test_death_after(self):
        config = ElasticConfig(heartbeat_interval=0.1, heartbeat_miss_budget=4)
        assert config.death_after == pytest.approx(0.4)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": -1},
            {"heartbeat_interval": 0.0},
            {"heartbeat_miss_budget": 0},
            {"lease_timeout": 0.0},
            {"run_timeout": 0.0},
            {"max_task_leases": 0},
            {"speculate_after": -0.1},
            {"max_respawns": -1},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ElasticConfig(**kwargs)


class TestResolveTask:
    def test_resolves_module_function(self):
        assert resolve_task(DOUBLE) is _task_double

    def test_malformed_kind_rejected(self):
        with pytest.raises(ValueError):
            resolve_task("no-separator")

    def test_missing_attribute_rejected(self):
        with pytest.raises(AttributeError):
            resolve_task("tests.test_elastic:_task_nonexistent")


class TestSupervisorEventLog:
    def test_emit_sequences_and_counts(self):
        log = SupervisorEventLog()
        log.emit("spawn", worker=0)
        log.emit("dispatch", task=0, worker=0)
        log.emit("spawn", worker=1)
        assert len(log) == 3
        assert [r["seq"] for r in log.events] == [0, 1, 2]
        assert all(r["v"] == ELASTIC_EVENT_VERSION for r in log.events)
        assert log.count("spawn") == 2
        assert log.count("dispatch") == 1
        assert log.count("death") == 0
        assert log.kinds() == ["spawn", "dispatch"]

    def test_flush_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = SupervisorEventLog(path)
        log.emit("spawn", worker=0, pid=123)
        log.emit("complete", task=4, lease=0, worker=0)
        assert log.flush() == path
        records = SupervisorEventLog.load(path)
        assert len(records) == 2
        assert records[0]["event"] == "spawn"
        assert records[0]["pid"] == 123
        assert records[1]["task"] == 4

    def test_memory_only_flush_returns_none(self):
        log = SupervisorEventLog()
        log.emit("spawn", worker=0)
        assert log.flush() is None

    def test_load_rejects_corrupt_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"v": 1, "seq": 0, "event": "spawn"}\nnot json\n')
        with pytest.raises(ValueError, match="corrupt"):
            SupervisorEventLog.load(path)

    def test_load_rejects_unknown_schema_version(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(json.dumps({"v": 99, "seq": 0, "event": "spawn"}) + "\n")
        with pytest.raises(ValueError, match="schema version"):
            SupervisorEventLog.load(path)


# ----------------------------------------------------------------------
# Degraded (in-process) execution
# ----------------------------------------------------------------------


class TestInlineExecution:
    def test_inline_results_keyed_by_task_index(self):
        pool = WorkerPool(ElasticConfig(workers=0))
        results = pool.run(DOUBLE, [1, 2, 3, 4])
        assert results == {0: 2, 1: 4, 2: 6, 3: 8}
        assert pool.events.count("degrade") == 1
        assert pool.events.events[0]["reason"] == "workers<=1"

    def test_empty_payloads(self):
        pool = WorkerPool(ElasticConfig(workers=0))
        assert pool.run(DOUBLE, []) == {}
        assert len(pool.events) == 0

    def test_inline_failure_quarantines_with_partial_results(self, tmp_path):
        pool = WorkerPool(ElasticConfig(workers=0), quarantine_dir=tmp_path)
        with pytest.raises(TaskQuarantinedError) as excinfo:
            pool.run(SLEEP_VALUE, [{"value": 7}, {"wrong-key": 1}, {"value": 9}])
        error = excinfo.value
        assert error.task_ids == [1]
        assert error.results == {0: 7, 2: 9}
        assert error.ledger_path == tmp_path / QuarantineLedger.FILENAME
        records = QuarantineLedger.load(error.ledger_path)
        assert len(records) == 1
        assert records[0]["index"] == 1
        assert records[0]["reasons"] == ["elastic.poison_task"]
        assert records[0]["detail"]["kind"] == SLEEP_VALUE
        assert pool.events.count("quarantine") == 1

    def test_bad_kind_fails_fast(self):
        pool = WorkerPool(ElasticConfig(workers=0))
        with pytest.raises(ValueError):
            pool.run("malformed", [1])
        with pytest.raises(AttributeError):
            pool.run("tests.test_elastic:_task_nonexistent", [1])


# ----------------------------------------------------------------------
# Supervised (real-process) execution
# ----------------------------------------------------------------------


def _chaos_pool(faults: str | None = None, **overrides) -> WorkerPool:
    """A fast-heartbeat process pool for chaos tests."""
    knobs = {
        "workers": 2,
        "heartbeat_interval": 0.05,
        "heartbeat_miss_budget": 4,
        "spawn_grace": 20.0,
        "run_timeout": 120.0,
    }
    knobs.update(overrides)
    worker_faults = (
        FaultPlan.parse(faults).worker_faults() if faults is not None else None
    )
    return WorkerPool(ElasticConfig(**knobs), worker_faults=worker_faults)


class TestProcessPool:
    def test_round_trip(self):
        pool = _chaos_pool()
        results = pool.run(DOUBLE, list(range(8)))
        assert results == {i: 2 * i for i in range(8)}
        assert pool.events.count("spawn") == 2
        assert pool.events.count("complete") == 8
        assert pool.events.count("death") == 0

    def test_sigkill_mid_task_redispatches(self):
        deaths_before = counter_value("resilience.elastic.deaths")
        redispatches_before = counter_value("resilience.elastic.redispatches")
        pool = _chaos_pool(faults="seed=3,kill_task=1")
        results = pool.run(DOUBLE, list(range(6)))
        assert results == {i: 2 * i for i in range(6)}
        events = pool.events
        assert events.count("fault-armed") == 1
        assert events.count("death") == 1
        assert events.count("re-dispatch") == 1
        # The supervisor backfilled the killed worker.
        assert events.count("spawn") == 3
        assert counter_value("resilience.elastic.deaths") == deaths_before + 1
        assert (
            counter_value("resilience.elastic.redispatches") == redispatches_before + 1
        )
        assert counter_value("faults.worker_kill.injected") >= 1

    def test_hang_detected_by_heartbeat_miss(self):
        pool = _chaos_pool(faults="seed=3,hang_task=0", heartbeat_miss_budget=3)
        results = pool.run(DOUBLE, list(range(4)))
        assert results == {i: 2 * i for i in range(4)}
        events = pool.events
        assert events.count("heartbeat-miss") == 1
        assert events.count("death") == 1
        death = next(r for r in events.events if r["event"] == "death")
        assert death["reason"] == "heartbeat-miss"

    def test_straggler_speculation_first_result_wins(self):
        speculations_before = counter_value("resilience.elastic.speculations")
        pool = _chaos_pool(speculate=True, speculate_after=0.1)
        payloads = [{"sleep": 0.8, "value": 10}, {"value": 20}, {"value": 30}]
        results = pool.run(SLEEP_VALUE, payloads)
        assert results == {0: 10, 1: 20, 2: 30}
        assert pool.events.count("speculate") == 1
        assert (
            counter_value("resilience.elastic.speculations") == speculations_before + 1
        )

    def test_poison_task_quarantined_after_lease_budget(self, tmp_path):
        quarantined_before = counter_value("resilience.elastic.quarantined")
        pool = WorkerPool(
            ElasticConfig(workers=2, heartbeat_interval=0.05, max_task_leases=2),
            quarantine_dir=tmp_path,
        )
        with pytest.raises(TaskQuarantinedError) as excinfo:
            pool.run(BOOM, [1, 2])
        error = excinfo.value
        assert error.task_ids == [0, 1]
        # Each task burned its full lease budget before quarantine.
        assert pool.events.count("quarantine") == 2
        assert pool.events.count("re-dispatch") == 2
        assert counter_value("resilience.elastic.quarantined") == quarantined_before + 2
        records = QuarantineLedger.load(tmp_path / QuarantineLedger.FILENAME)
        assert [r["index"] for r in records] == [0, 1]
        assert all(r["reasons"] == ["elastic.poison_task"] for r in records)

    def test_run_timeout_raises_elastic_error(self):
        pool = _chaos_pool(run_timeout=0.5)
        with pytest.raises(ElasticError, match="run_timeout"):
            pool.run(SLEEP_VALUE, [{"sleep": 30.0, "value": 1}])

    def test_event_log_flushed_to_path(self, tmp_path):
        path = tmp_path / "events.jsonl"
        pool = WorkerPool(
            ElasticConfig(workers=2, heartbeat_interval=0.05),
            events=SupervisorEventLog(path),
        )
        pool.run(DOUBLE, [1, 2, 3])
        records = SupervisorEventLog.load(path)
        kinds = {r["event"] for r in records}
        assert {"spawn", "dispatch", "complete"} <= kinds


# ----------------------------------------------------------------------
# Integration: byte-identical FAE plans under chaos
# ----------------------------------------------------------------------


def _plan_bytes(tmp_path, name, log, config, pool=None) -> bytes:
    plan = fae_preprocess(
        log, config, batch_size=64, drop_last=True, chunk_size=250, pool=pool
    )
    path = tmp_path / name
    plan.save(path)
    return path.read_bytes()


class TestParallelPreprocess:
    def test_parallel_plan_matches_sequential_bytes(
        self, tmp_path, tiny_log, tiny_fae_config
    ):
        sequential = _plan_bytes(tmp_path, "seq.npz", tiny_log, tiny_fae_config)
        pool = _chaos_pool(workers=3)
        parallel = _plan_bytes(
            tmp_path, "par.npz", tiny_log, tiny_fae_config, pool=pool
        )
        assert parallel == sequential
        assert pool.events.count("death") == 0

    def test_chaos_plan_matches_sequential_bytes(
        self, tmp_path, tiny_log, tiny_fae_config
    ):
        """The acceptance proof: SIGKILL one profiling worker mid-task and
        straggle another; the merged plan must still be byte-identical."""
        sequential = _plan_bytes(tmp_path, "seq.npz", tiny_log, tiny_fae_config)
        pool = _chaos_pool(
            faults="seed=5,kill_task=2,straggle_task=4,straggle_secs=0.6",
            workers=3,
            speculate=True,
            speculate_after=0.25,
        )
        chaotic = _plan_bytes(
            tmp_path, "chaos.npz", tiny_log, tiny_fae_config, pool=pool
        )
        assert chaotic == sequential
        events = pool.events
        assert events.count("death") == 1
        assert events.count("re-dispatch") >= 1
        assert events.count("spawn") >= 3
        assert events.count("fault-armed") == 2  # kill + straggle armed


# ----------------------------------------------------------------------
# Integration: rank death + rejoin in the distributed FAE trainer
# ----------------------------------------------------------------------


def small_dlrm(schema, seed=3):
    return DLRM(schema, DLRMConfig("4-8", "8-1", seed=seed))


@pytest.fixture(scope="module")
def fae_setup(request):
    tiny_log = request.getfixturevalue("tiny_log")
    config = request.getfixturevalue("tiny_fae_config")
    train, test = train_test_split(tiny_log, 0.2, seed=4)
    plan = fae_preprocess(train, config, batch_size=64, drop_last=True)
    return tiny_log.schema, train, test, plan


class TestElasticRejoin:
    def test_rank_death_rejoins_at_segment_boundary(self, fae_setup):
        schema, train, test, plan = fae_setup
        events = SupervisorEventLog()
        rejoins_before = counter_value("resilience.elastic.rejoins")
        trainer = DistributedFAETrainer(
            [small_dlrm(schema, seed=7) for _ in range(3)],
            plan,
            lr=0.15,
            fault_plan=FaultPlan(seed=7, rank_death=(1, 10)),
            rejoin=True,
            event_log=events,
        )
        result = trainer.train(train, test, epochs=1)

        # The rank died, then was re-admitted: the run *finishes* at full
        # world size even though it shrank mid-flight.
        assert result.world_shrinks == 1
        assert result.rejoins == 1
        assert trainer.world_size == 3
        assert len(trainer.replicas) == 3
        assert counter_value("resilience.elastic.rejoins") == rejoins_before + 1
        assert get_registry().gauge("dist.world_size").value == 3
        assert events.count("death") == 1
        assert events.count("rejoin") == 1
        rejoin = next(r for r in events.events if r["event"] == "rejoin")
        assert rejoin["world_size"] == 3
        assert np.isfinite(result.final_test_accuracy)

        # Survivors and the rejoined rank are bit-equal on dense params.
        reference = trainer.replicas[0].dense_parameters()
        for model in trainer.replicas[1:]:
            for p, q in zip(reference, model.dense_parameters()):
                np.testing.assert_array_equal(q.value, p.value)

        # Final quality matches an uninterrupted run closely: only the
        # segments trained at world size 2 differ.
        baseline = DistributedFAETrainer(
            [small_dlrm(schema, seed=7) for _ in range(3)], plan, lr=0.15
        ).train(train, test, epochs=1)
        assert result.final_test_accuracy == pytest.approx(
            baseline.final_test_accuracy, abs=1e-2
        )
        assert result.history.final.test_loss == pytest.approx(
            baseline.history.final.test_loss, abs=1e-3
        )

    def test_rejoin_after_eviction_stays_cold(self, fae_setup):
        schema, train, test, plan = fae_setup
        trainer = DistributedFAETrainer(
            [small_dlrm(schema, seed=9) for _ in range(3)],
            plan,
            lr=0.15,
            fault_plan=FaultPlan(seed=9, rank_death=(1, 10), hot_eviction_at=5),
            rejoin=True,
        )
        result = trainer.train(train, test, epochs=1)
        assert result.degraded
        assert result.rejoins == 1
        assert trainer.world_size == 3
        # The rejoined rank trains on the cold path like everyone else;
        # no hot replica may exist after eviction.
        assert trainer.replicator.evicted
        assert trainer.replicator.num_replicas == 0
        assert np.isfinite(result.final_test_accuracy)
