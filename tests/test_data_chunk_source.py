"""Tests for the chunk-source abstraction in :mod:`repro.data.chunk_source`."""

import json

import numpy as np
import pytest

from repro.data import (
    LogChunkSource,
    ShardChunkSource,
    StreamChunkSource,
    SyntheticClickLog,
    SyntheticClickStream,
    SyntheticConfig,
    UnsizedChunkSource,
    as_chunk_source,
    save_log_shards,
)
from repro.data.chunk_source import SHARD_MANIFEST


@pytest.fixture(scope="module")
def small_log(tiny_schema):
    return SyntheticClickLog(tiny_schema, SyntheticConfig(num_samples=1000, seed=5))


def reassemble(source):
    """Concatenate a source's chunks back into full columns."""
    dense, labels = [], []
    sparse = {name: [] for name in source.schema.table_names}
    starts = []
    for start, chunk in source:
        starts.append((start, len(chunk)))
        dense.append(chunk.dense)
        labels.append(chunk.labels)
        for name, ids in chunk.sparse.items():
            sparse[name].append(ids)
    return (
        starts,
        np.concatenate(dense),
        {name: np.concatenate(parts) for name, parts in sparse.items()},
        np.concatenate(labels),
    )


class TestLogChunkSource:
    def test_single_chunk_default(self, small_log):
        source = LogChunkSource(small_log)
        chunks = list(source)
        assert len(chunks) == 1
        start, chunk = chunks[0]
        assert start == 0
        assert len(chunk) == len(small_log)
        assert source.num_samples == len(small_log)

    def test_chunks_are_views_not_copies(self, small_log):
        source = LogChunkSource(small_log, chunk_size=256)
        for start, chunk in source:
            assert np.shares_memory(chunk.dense, small_log.dense)
            for name, ids in chunk.sparse.items():
                assert np.shares_memory(ids, small_log.sparse[name])

    def test_reassembles_exactly(self, small_log):
        starts, dense, sparse, labels = reassemble(LogChunkSource(small_log, chunk_size=77))
        assert starts[0] == (0, 77)
        assert starts[-1][0] + starts[-1][1] == len(small_log)
        assert np.array_equal(dense, small_log.dense)
        assert np.array_equal(labels, small_log.labels)
        for name in sparse:
            assert np.array_equal(sparse[name], small_log.sparse[name])

    def test_reiterable(self, small_log):
        source = LogChunkSource(small_log, chunk_size=300)
        assert len(list(source)) == len(list(source)) == 4

    def test_rejects_bad_chunk_size(self, small_log):
        with pytest.raises(ValueError):
            LogChunkSource(small_log, chunk_size=0)


class TestStreamChunkSource:
    def test_matches_stream(self, tiny_schema):
        stream = SyntheticClickStream(tiny_schema, total_samples=500, chunk_size=128, seed=9)
        source = StreamChunkSource(stream)
        assert source.num_samples == 500
        assert source.chunk_size == 128
        starts, dense, _sparse, labels = reassemble(source)
        assert sum(n for _s, n in starts) == 500
        assert dense.shape[0] == 500 and labels.shape[0] == 500


class TestUnsizedChunkSource:
    def test_unknown_length_and_reiterable(self, tiny_schema):
        stream = SyntheticClickStream(tiny_schema, total_samples=400, chunk_size=100, seed=2)
        source = UnsizedChunkSource(tiny_schema, lambda: iter(stream), chunk_size=100)
        assert source.num_samples is None
        assert len(list(source)) == 4
        assert len(list(source)) == 4


class TestShardRoundTrip:
    def test_round_trip(self, small_log, tmp_path):
        directory = save_log_shards(
            tmp_path / "shards", LogChunkSource(small_log, chunk_size=256)
        )
        source = ShardChunkSource(directory)
        assert source.num_samples == len(small_log)
        assert source.schema.table_names == small_log.schema.table_names
        _starts, dense, sparse, labels = reassemble(source)
        assert np.array_equal(dense, small_log.dense)
        assert np.array_equal(labels, small_log.labels)
        for name in sparse:
            assert np.array_equal(sparse[name], small_log.sparse[name])

    def test_schema_fields_survive(self, small_log, tmp_path):
        directory = save_log_shards(tmp_path / "shards", small_log)
        schema = ShardChunkSource(directory).schema
        for spec, original in zip(schema.tables, small_log.schema.tables):
            assert spec.name == original.name
            assert spec.num_rows == original.num_rows
            assert spec.dim == original.dim
            assert spec.zipf_exponent == original.zipf_exponent
            assert spec.multiplicity == original.multiplicity

    def test_missing_manifest_raises(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(FileNotFoundError):
            ShardChunkSource(tmp_path / "empty")

    def test_corrupt_manifest_names_file(self, small_log, tmp_path):
        directory = save_log_shards(tmp_path / "shards", small_log)
        (directory / SHARD_MANIFEST).write_text("{not json", encoding="utf-8")
        with pytest.raises(RuntimeError, match=SHARD_MANIFEST):
            ShardChunkSource(directory)

    def test_wrong_format_rejected(self, small_log, tmp_path):
        directory = save_log_shards(tmp_path / "shards", small_log)
        (directory / SHARD_MANIFEST).write_text(json.dumps({"format": "other"}))
        with pytest.raises(RuntimeError, match="manifest"):
            ShardChunkSource(directory)

    def test_missing_shard_names_file(self, small_log, tmp_path):
        directory = save_log_shards(
            tmp_path / "shards", LogChunkSource(small_log, chunk_size=256)
        )
        (directory / "chunk-000001.npz").unlink()
        with pytest.raises(RuntimeError, match="chunk-000001"):
            list(ShardChunkSource(directory))

    def test_truncated_shard_names_file(self, small_log, tmp_path):
        directory = save_log_shards(
            tmp_path / "shards", LogChunkSource(small_log, chunk_size=256)
        )
        shard = directory / "chunk-000000.npz"
        shard.write_bytes(shard.read_bytes()[:40])
        with pytest.raises(RuntimeError, match="chunk-000000"):
            list(ShardChunkSource(directory))


class TestAsChunkSource:
    def test_passthrough(self, small_log):
        source = LogChunkSource(small_log)
        assert as_chunk_source(source) is source

    def test_coerces_log_stream_and_path(self, small_log, tiny_schema, tmp_path):
        assert isinstance(as_chunk_source(small_log), LogChunkSource)
        stream = SyntheticClickStream(tiny_schema, total_samples=100, chunk_size=50)
        assert isinstance(as_chunk_source(stream), StreamChunkSource)
        directory = save_log_shards(tmp_path / "shards", small_log)
        assert isinstance(as_chunk_source(directory), ShardChunkSource)

    def test_rejects_unknown(self):
        with pytest.raises(TypeError):
            as_chunk_source(42)
