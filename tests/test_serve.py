"""Tests for the serving companion: inference engine and latency model."""

import numpy as np
import pytest

from repro.core import fae_preprocess
from repro.hw import Cluster, characterize
from repro.models import workload_by_name
from repro.models.dlrm import DLRM, DLRMConfig
from repro.serve import CircuitBreaker, InferenceEngine, LoadShedError, ServingSimulator


@pytest.fixture(scope="module")
def trained(request):
    tiny_log = request.getfixturevalue("tiny_log")
    tiny_schema = request.getfixturevalue("tiny_schema")
    config = request.getfixturevalue("tiny_fae_config")
    from repro.data import train_test_split
    from repro.train import BaselineTrainer

    train, test = train_test_split(tiny_log, 0.2, seed=1)
    model = DLRM(tiny_schema, DLRMConfig("4-8", "8-1", seed=3))
    BaselineTrainer(model, lr=0.2).train(train, test, epochs=1, batch_size=128)
    plan = fae_preprocess(train, config, batch_size=64)
    return model, train, test, plan


class TestInferenceEngine:
    def test_predict_proba_range_and_shape(self, trained):
        model, _train, test, _plan = trained
        engine = InferenceEngine(model)
        probs = engine.predict_proba(test)
        assert probs.shape == (len(test),)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_batched_equals_unbatched(self, trained):
        model, _train, test, _plan = trained
        small = InferenceEngine(model, batch_size=17)
        large = InferenceEngine(model, batch_size=4096)
        np.testing.assert_allclose(
            small.predict_proba(test), large.predict_proba(test), rtol=1e-6
        )

    def test_predictions_beat_chance(self, trained):
        model, _train, test, _plan = trained
        probs = InferenceEngine(model).predict_proba(test)
        accuracy = ((probs >= 0.5) == test.labels.astype(bool)).mean()
        majority = max(test.base_rate(), 1 - test.base_rate())
        assert accuracy > majority - 0.05

    def test_rank_candidates(self, trained, tiny_schema):
        model, train, _test, _plan = trained
        engine = InferenceEngine(model)
        context = {name: train.sparse[name][0] for name in tiny_schema.table_names}
        candidates = np.arange(50)
        ranked = engine.rank_candidates(
            dense=train.dense[0],
            sparse_context=context,
            candidate_table="table_00",
            candidate_ids=candidates,
            top_k=5,
        )
        assert len(ranked.item_ids) == 5
        # best-first ordering
        assert np.all(np.diff(ranked.scores) <= 1e-12)
        assert set(ranked.item_ids.tolist()) <= set(candidates.tolist())

    def test_rank_scores_match_pointwise(self, trained, tiny_schema):
        model, train, _test, _plan = trained
        engine = InferenceEngine(model)
        context = {name: train.sparse[name][1] for name in tiny_schema.table_names}
        ranked = engine.rank_candidates(
            dense=train.dense[1],
            sparse_context=context,
            candidate_table="table_00",
            candidate_ids=np.array([3]),
            top_k=1,
        )
        # A single-candidate ranking is just a pointwise prediction.
        assert 0 <= ranked.scores[0] <= 1

    def test_rank_validation(self, trained, tiny_schema):
        model, train, _test, _plan = trained
        engine = InferenceEngine(model)
        context = {name: train.sparse[name][0] for name in tiny_schema.table_names}
        with pytest.raises(KeyError):
            engine.rank_candidates(train.dense[0], context, "nope", np.array([1]))
        with pytest.raises(ValueError):
            engine.rank_candidates(train.dense[0], context, "table_00", np.array([]))

    def test_hot_request_mask(self, trained):
        model, train, _test, plan = trained
        engine = InferenceEngine(model, hot_bags=plan.bags)
        mask = engine.hot_request_mask(train)
        np.testing.assert_array_equal(mask, plan.dataset.hot_mask)

    def test_hot_mask_requires_bags(self, trained):
        model, train, _test, _plan = trained
        with pytest.raises(RuntimeError):
            InferenceEngine(model).hot_request_mask(train)

    def test_bad_batch_size(self, trained):
        model = trained[0]
        with pytest.raises(ValueError):
            InferenceEngine(model, batch_size=0)


class TestAdmissionControl:
    @staticmethod
    def _request(trained, tiny_schema):
        model, train, _test, _plan = trained
        context = {name: train.sparse[name][0] for name in tiny_schema.table_names}
        return model, train.dense[0], context

    def test_out_of_range_candidate_names_table_and_id(self, trained, tiny_schema):
        model, dense, context = self._request(trained, tiny_schema)
        engine = InferenceEngine(model)
        num_rows = model.tables["table_00"].num_rows
        with pytest.raises(ValueError) as excinfo:
            engine.rank_candidates(
                dense, context, "table_00", np.array([0, num_rows, 1])
            )
        message = str(excinfo.value)
        assert "table_00" in message
        assert str(num_rows) in message

    def test_negative_candidate_rejected(self, trained, tiny_schema):
        model, dense, context = self._request(trained, tiny_schema)
        engine = InferenceEngine(model)
        with pytest.raises(ValueError, match="table_00"):
            engine.rank_candidates(dense, context, "table_00", np.array([2, -1]))

    def test_bad_ids_rejected_before_fallback_path(self, trained, tiny_schema):
        # Validation happens once, on admission — even a request that
        # would immediately trip the deadline fallback is rejected up
        # front; the fallback itself no longer re-validates (wasted work
        # at exactly the moment the engine is behind deadline).
        model, dense, context = self._request(trained, tiny_schema)
        engine = InferenceEngine(model)
        with pytest.raises(ValueError, match="table_00"):
            engine.rank_candidates(
                dense, context, "table_00", np.array([2, -3]), deadline_s=1e-9
            )

    def test_fallback_scores_skip_revalidation(self, trained):
        # Pre-validated ids go straight to the embedding read: scores
        # are valid probabilities, one per candidate.
        engine = InferenceEngine(trained[0])
        scores = engine._fallback_scores("table_00", np.array([0, 1, 2]))
        assert scores.shape == (3,)
        assert np.all((scores > 0) & (scores < 1))

    def test_breaker_trips_and_sheds(self, trained, tiny_schema):
        model, dense, context = self._request(trained, tiny_schema)
        engine = InferenceEngine(
            model,
            breaker=CircuitBreaker(
                window=8, failure_threshold=0.5, min_requests=2, cooldown=2
            ),
        )
        candidates = np.arange(40)
        # An impossible deadline degrades every request; degraded
        # responses count as failures and trip the breaker.
        for _ in range(2):
            result = engine.rank_candidates(
                dense, context, "table_00", candidates, deadline_s=1e-9
            )
            assert result.degraded
        assert engine.breaker.state == "open"
        with pytest.raises(LoadShedError, match="open"):
            engine.rank_candidates(dense, context, "table_00", candidates)
        assert engine.breaker.shed_requests == 1

    def test_breaker_recovers_after_cooldown(self, trained, tiny_schema):
        model, dense, context = self._request(trained, tiny_schema)
        breaker = CircuitBreaker(
            window=8, failure_threshold=0.5, min_requests=2, cooldown=1
        )
        engine = InferenceEngine(model, breaker=breaker)
        candidates = np.arange(40)
        for _ in range(2):
            engine.rank_candidates(
                dense, context, "table_00", candidates, deadline_s=1e-9
            )
        assert breaker.state == "open"
        with pytest.raises(LoadShedError):
            engine.rank_candidates(dense, context, "table_00", candidates)
        # Cooldown elapsed: the next request is the half-open probe, and
        # its (undegraded) success closes the breaker.
        result = engine.rank_candidates(dense, context, "table_00", candidates)
        assert not result.degraded
        assert breaker.state == "closed"

    def test_health_snapshot(self, trained, tiny_schema):
        model, dense, context = self._request(trained, tiny_schema)
        plain = InferenceEngine(model)
        assert plain.health()["breaker"] is None

        engine = InferenceEngine(model, breaker=CircuitBreaker())
        engine.rank_candidates(dense, context, "table_00", np.arange(10))
        health = engine.health()
        assert health["requests"] >= 1
        assert health["batches"] >= 1
        assert set(health["breaker"]) == {
            "state",
            "failure_rate",
            "window_size",
            "trips",
            "shed_requests",
        }
        assert health["breaker"]["state"] == "closed"


class TestRequestCounters:
    @staticmethod
    def _request(trained, tiny_schema):
        model, train, _test, _plan = trained
        context = {name: train.sparse[name][0] for name in tiny_schema.table_names}
        return model, train.dense[0], context

    def test_one_ranking_is_one_request_many_batches(self, trained, tiny_schema):
        # A chunked ranking used to inflate serve.requests by the chunk
        # count; now one rank_candidates call is exactly one logical
        # request while the forward calls land in serve.batches.
        from repro.obs import get_registry

        model, dense, context = self._request(trained, tiny_schema)
        engine = InferenceEngine(model, batch_size=16)
        registry = get_registry()
        requests_before = registry.counter("serve.requests").value
        batches_before = registry.counter("serve.batches").value
        engine.rank_candidates(dense, context, "table_00", np.arange(100))
        assert registry.counter("serve.requests").value - requests_before == 1
        assert registry.counter("serve.batches").value - batches_before >= 100 // 16

    def test_predict_proba_is_one_request(self, trained):
        from repro.obs import get_registry

        model, _train, test, _plan = trained
        engine = InferenceEngine(model, batch_size=64)
        registry = get_registry()
        requests_before = registry.counter("serve.requests").value
        batches_before = registry.counter("serve.batches").value
        engine.predict_proba(test, indices=np.arange(200))
        assert registry.counter("serve.requests").value - requests_before == 1
        assert registry.counter("serve.batches").value - batches_before == 200 // 64 + 1

    def test_shed_requests_record_rejection_latency(self, trained, tiny_schema):
        from repro.obs import get_registry

        model, dense, context = self._request(trained, tiny_schema)
        engine = InferenceEngine(
            model,
            breaker=CircuitBreaker(
                window=8, failure_threshold=0.5, min_requests=2, cooldown=4
            ),
        )
        rejected = get_registry().histogram("serve.rejected.latency")
        count_before = rejected.count
        for _ in range(2):
            engine.rank_candidates(
                dense, context, "table_00", np.arange(40), deadline_s=1e-9
            )
        with pytest.raises(LoadShedError):
            engine.rank_candidates(dense, context, "table_00", np.arange(40))
        assert rejected.count == count_before + 1


class TestHotCacheServing:
    @staticmethod
    def _cached_engine(trained, budget=16 * 1024, **knobs):
        from repro.core.hotcache import EmbeddingHotCache, HotCacheConfig

        model, _train, _test, plan = trained
        cache = EmbeddingHotCache(
            plan.bags, HotCacheConfig(budget_bytes=budget, **knobs)
        )
        return InferenceEngine(model, hot_cache=cache), cache

    def test_health_exposes_cache_stats(self, trained, tiny_schema):
        model, train, _test, _plan = trained
        engine, cache = self._cached_engine(trained)
        context = {name: train.sparse[name][0] for name in tiny_schema.table_names}
        engine.rank_candidates(train.dense[0], context, "table_00", np.arange(50))
        health = engine.health()
        assert health["cache"]["hits"] + health["cache"]["misses"] >= 50
        assert health["cache"]["hot_rows"] > 0
        assert 0.0 <= health["cache"]["hit_rate"] <= 1.0
        assert InferenceEngine(model).health()["cache"] is None

    def test_serving_traffic_feeds_and_rebalances_cache(self, trained, tiny_schema):
        _model, train, _test, _plan = trained
        engine, cache = self._cached_engine(trained, rebalance_every=2)
        context = {name: train.sparse[name][0] for name in tiny_schema.table_names}
        version = cache.version
        # Hammer a cold candidate range until the auto-rebalance window
        # trips; membership must turn over and the engine's masks follow.
        for _ in range(6):
            engine.rank_candidates(
                train.dense[0], context, "table_00", np.arange(500, 560)
            )
        assert cache.rebalances > 0
        assert cache.version > version
        assert engine.hot_request_mask(train).shape == (len(train),)


class TestModelInstall:
    def test_install_swaps_model_atomically(self, trained, tiny_schema):
        model, train, _test, plan = trained
        engine = InferenceEngine(model, hot_bags=plan.bags)
        context = {name: train.sparse[name][0] for name in tiny_schema.table_names}
        before = engine.rank_candidates(
            train.dense[0], context, "table_00", np.arange(20), top_k=20
        )

        other = DLRM(tiny_schema, DLRMConfig("4-8", "8-1", seed=99))
        engine.install(other)
        assert engine.model is other
        # Hot bags were not part of the new generation.
        with pytest.raises(RuntimeError):
            engine.hot_request_mask(train)
        after = engine.rank_candidates(
            train.dense[0], context, "table_00", np.arange(20), top_k=20
        )
        # Different parameters, different scores — the swap was real.
        assert not np.allclose(
            np.sort(before.scores), np.sort(after.scores)
        )

        engine.install(model, hot_bags=plan.bags)
        restored = engine.hot_request_mask(train)
        np.testing.assert_array_equal(restored, plan.dataset.hot_mask)


@pytest.fixture(scope="module")
def serving_sim():
    workload = characterize(workload_by_name("RMC2"))
    return ServingSimulator(Cluster(num_gpus=1), workload)


class TestServingSimulator:
    def test_hot_batches_faster(self, serving_sim):
        assert serving_sim.hot_resident_batch_seconds(64) < serving_sim.cpu_embedding_batch_seconds(64)

    def test_hot_resident_lowers_tail_latency(self, serving_sim):
        rate = 0.5 * serving_sim.saturation_rate("cpu-embedding")
        cpu = serving_sim.simulate("cpu-embedding", rate, num_requests=3000, seed=1)
        hot = serving_sim.simulate("hot-resident", rate, num_requests=3000, seed=1)
        assert hot.p99 < cpu.p99
        assert hot.mean < cpu.mean

    def test_saturation_rate_higher_for_hot(self, serving_sim):
        assert serving_sim.saturation_rate("hot-resident") > serving_sim.saturation_rate(
            "cpu-embedding"
        )

    def test_latency_grows_with_load(self, serving_sim):
        base = serving_sim.saturation_rate("cpu-embedding")
        light = serving_sim.simulate("cpu-embedding", 0.3 * base, num_requests=2000)
        heavy = serving_sim.simulate("cpu-embedding", 0.9 * base, num_requests=2000)
        assert heavy.p99 > light.p99

    def test_percentiles_ordered(self, serving_sim):
        stats = serving_sim.simulate("hot-resident", 200, num_requests=2000)
        assert stats.p50 <= stats.p95 <= stats.p99
        assert stats.throughput > 0

    def test_validation(self, serving_sim):
        with pytest.raises(ValueError):
            serving_sim.simulate("magic", 100)
        with pytest.raises(ValueError):
            serving_sim.simulate("cpu-embedding", 0)
        with pytest.raises(ValueError):
            ServingSimulator(Cluster(), characterize(workload_by_name("RMC2")), max_batch=0)
