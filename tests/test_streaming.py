"""Tests for the streaming pipeline: chunked streams, reservoir sampling,
one-pass calibration, and incremental pure-batch packing."""

import numpy as np
import pytest

from repro.core import EmbeddingClassifier, EmbeddingLogger
from repro.core.streaming import ReservoirSampler, StreamingCalibrator, StreamingPacker
from repro.data import SyntheticClickLog, SyntheticConfig
from repro.data.stream import SyntheticClickStream


@pytest.fixture(scope="module")
def stream(request):
    tiny_schema = request.getfixturevalue("tiny_schema")
    return SyntheticClickStream(
        tiny_schema, total_samples=4000, chunk_size=512, seed=11
    )


class TestSyntheticClickStream:
    def test_chunk_geometry(self, stream, tiny_schema):
        assert stream.num_chunks == 8
        start, chunk = next(iter(stream))
        assert start == 0
        assert len(chunk) == 512
        assert chunk.schema is tiny_schema

    def test_final_chunk_short(self, tiny_schema):
        s = SyntheticClickStream(tiny_schema, total_samples=1000, chunk_size=300)
        sizes = [len(chunk) for _start, chunk in s]
        assert sizes == [300, 300, 300, 100]

    def test_total_samples(self, stream):
        total = sum(len(chunk) for _s, chunk in stream)
        assert total == len(stream) == 4000

    def test_chunks_deterministic_and_independent(self, stream):
        direct = stream.chunk(3)
        via_iteration = [c for _s, c in stream][3]
        np.testing.assert_array_equal(direct.labels, via_iteration.labels)
        np.testing.assert_array_equal(
            direct.sparse["table_00"], via_iteration.sparse["table_00"]
        )

    def test_chunks_differ_from_each_other(self, stream):
        a, b = stream.chunk(0), stream.chunk(1)
        assert not np.array_equal(a.sparse["table_00"], b.sparse["table_00"])

    def test_distribution_matches_materialized_log(self, tiny_schema):
        """Stream and one-shot generator share the same popularity law."""
        s = SyntheticClickStream(tiny_schema, total_samples=4000, chunk_size=1000, seed=11)
        stream_counts = np.zeros(tiny_schema.table("table_00").num_rows, dtype=np.int64)
        for _start, chunk in s:
            stream_counts += chunk.access_counts("table_00")
        log = SyntheticClickLog(tiny_schema, SyntheticConfig(num_samples=4000, seed=11))
        log_counts = log.access_counts("table_00")
        # Same generative samplers -> strongly correlated rank profiles.
        corr = np.corrcoef(stream_counts, log_counts)[0, 1]
        assert corr > 0.9

    def test_labels_learnable(self, stream):
        # The planted logit must produce a non-degenerate label mix.
        labels = np.concatenate([c.labels for _s, c in stream])
        assert 0.2 < labels.mean() < 0.8

    def test_bad_args(self, tiny_schema):
        with pytest.raises(ValueError):
            SyntheticClickStream(tiny_schema, total_samples=0)
        with pytest.raises(ValueError):
            SyntheticClickStream(tiny_schema, total_samples=10, chunk_size=0)
        with pytest.raises(IndexError):
            SyntheticClickStream(tiny_schema, total_samples=10).chunk(99)


class TestReservoirSampler:
    def test_fills_to_capacity(self):
        sampler = ReservoirSampler(capacity=10, seed=0)
        sampler.offer_many(range(5))
        assert sampler.items == [0, 1, 2, 3, 4]
        assert not sampler.is_uniform_yet

    def test_capacity_respected(self):
        sampler = ReservoirSampler(capacity=10, seed=0)
        sampler.offer_many(range(1000))
        assert len(sampler.items) == 10
        assert sampler.observed == 1000
        assert sampler.is_uniform_yet

    def test_uniformity(self):
        # Each of 100 items should land in a 10-slot reservoir ~10% of
        # the time across many trials.
        hits = np.zeros(100)
        for trial in range(400):
            sampler = ReservoirSampler(capacity=10, seed=trial)
            sampler.offer_many(range(100))
            for item in sampler.items:
                hits[item] += 1
        frequency = hits / 400
        assert abs(frequency.mean() - 0.1) < 0.01
        assert frequency.std() < 0.05

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            ReservoirSampler(capacity=0)


class TestStreamingCalibrator:
    def test_matches_static_calibration(self, stream, tiny_fae_config):
        """One-pass sketched calibration lands on a comparable threshold
        and a hot set that covers the exact hot set."""
        from dataclasses import replace

        config = replace(tiny_fae_config, sample_rate=1.0)
        streaming = StreamingCalibrator(config, epsilon=1e-4).calibrate(stream)

        # Static reference over the materialized stream.
        chunks = [c for _s, c in stream]
        full = type(chunks[0])(
            schema=chunks[0].schema,
            dense=np.concatenate([c.dense for c in chunks]),
            sparse={
                name: np.concatenate([c.sparse[name] for c in chunks])
                for name in chunks[0].sparse
            },
            labels=np.concatenate([c.labels for c in chunks]),
        )
        profile = EmbeddingLogger(config).profile(full, np.arange(len(full)))
        from repro.core import StatisticalOptimizer

        static_result = StatisticalOptimizer(config).converge(profile)
        static_bags = EmbeddingClassifier(config).classify(
            profile, static_result.threshold
        )

        assert streaming.observed_samples == 4000
        # Thresholds within one grid step of each other.
        grid = list(config.threshold_grid)
        s_idx = grid.index(streaming.threshold)
        e_idx = grid.index(static_result.threshold)
        assert abs(s_idx - e_idx) <= 1
        # CMS one-sided error: the streaming hot set covers the exact one
        # when thresholds agree.
        if s_idx == e_idx:
            for name in static_bags:
                exact = set(static_bags[name].hot_ids.tolist())
                sketched = set(streaming.bags[name].hot_ids.tolist())
                assert exact <= sketched

    def test_sketch_bytes_bounded(self, stream, tiny_fae_config):
        calibration = StreamingCalibrator(tiny_fae_config, epsilon=1e-3).calibrate(stream)
        assert calibration.sketch_bytes > 0

    def test_empty_stream_rejected(self, tiny_fae_config):
        with pytest.raises(ValueError):
            StreamingCalibrator(tiny_fae_config).calibrate(iter([]))


class TestStreamingPacker:
    @pytest.fixture()
    def bags(self, stream, tiny_fae_config):
        from dataclasses import replace

        config = replace(tiny_fae_config, sample_rate=1.0)
        return StreamingCalibrator(config, epsilon=1e-4).calibrate(stream).bags

    def test_emits_pure_full_batches(self, stream, bags):
        packer = StreamingPacker(bags, batch_size=64)
        masks = {name: bag.hot_mask() for name, bag in bags.items()}
        batches = []
        for start, chunk in stream:
            batches.extend(packer.feed(start, chunk))
        for batch in batches:
            assert len(batch) == 64
            assert batch.hot in (True, False)
            for name, ids in batch.sparse.items():
                if batch.hot:
                    assert masks[name][ids].all()

    def test_flush_covers_every_input(self, stream, bags):
        packer = StreamingPacker(bags, batch_size=64)
        seen = []
        for start, chunk in stream:
            for batch in packer.feed(start, chunk):
                seen.append(batch.indices)
        for batch in packer.flush():
            seen.append(batch.indices)
        all_indices = np.sort(np.concatenate(seen))
        np.testing.assert_array_equal(all_indices, np.arange(len(stream)))
        assert packer.pending() == (0, 0)

    def test_counts_tracked(self, stream, bags):
        packer = StreamingPacker(bags, batch_size=64)
        for start, chunk in stream:
            list(packer.feed(start, chunk))
        list(packer.flush())
        assert packer.emitted["hot"] + packer.emitted["cold"] > 0

    def test_matches_static_packing_totals(self, stream, bags, tiny_fae_config):
        """Streaming and static packing agree on the hot/cold split."""
        packer = StreamingPacker(bags, batch_size=64)
        hot_streamed = 0
        for start, chunk in stream:
            for batch in packer.feed(start, chunk):
                hot_streamed += len(batch) if batch.hot else 0
        for batch in packer.flush():
            hot_streamed += len(batch) if batch.hot else 0

        from repro.core import InputProcessor

        chunks = [c for _s, c in stream]
        full = type(chunks[0])(
            schema=chunks[0].schema,
            dense=np.concatenate([c.dense for c in chunks]),
            sparse={
                name: np.concatenate([c.sparse[name] for c in chunks])
                for name in chunks[0].sparse
            },
            labels=np.concatenate([c.labels for c in chunks]),
        )
        static_hot = int(InputProcessor(bags).classify_inputs(full).sum())
        assert hot_streamed == static_hot

    def test_bad_batch_size(self, bags):
        with pytest.raises(ValueError):
            StreamingPacker(bags, batch_size=0)
