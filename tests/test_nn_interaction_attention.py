"""Unit tests for DotInteraction and SequenceAttention."""

import numpy as np
import pytest

from repro.nn import DotInteraction, SequenceAttention


class TestDotInteraction:
    def test_output_dim_formula(self):
        assert DotInteraction.output_dim(num_features=3, feature_dim=4) == 4 + 3
        assert DotInteraction.output_dim(num_features=27, feature_dim=16) == 16 + 27 * 26 // 2

    def test_forward_values(self, rng):
        inter = DotInteraction()
        x = rng.normal(size=(2, 3)).astype(np.float32)
        e1 = rng.normal(size=(2, 3)).astype(np.float32)
        e2 = rng.normal(size=(2, 3)).astype(np.float32)
        out = inter.forward(x, [e1, e2])
        assert out.shape == (2, 3 + 3)
        np.testing.assert_allclose(out[:, :3], x, rtol=1e-6)
        # pair order from tril_indices(k=-1): (e1,x), (e2,x), (e2,e1)
        np.testing.assert_allclose(out[0, 3], e1[0] @ x[0], rtol=1e-5)
        np.testing.assert_allclose(out[0, 4], e2[0] @ x[0], rtol=1e-5)
        np.testing.assert_allclose(out[0, 5], e2[0] @ e1[0], rtol=1e-5)

    def test_width_mismatch_rejected(self, rng):
        inter = DotInteraction()
        with pytest.raises(ValueError):
            inter.forward(np.zeros((1, 3)), [np.zeros((1, 4))])

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            DotInteraction().backward(np.zeros((1, 4)))

    def test_numeric_gradient(self, rng):
        inter = DotInteraction()
        x = rng.normal(size=(3, 4)).astype(np.float64)
        e = rng.normal(size=(3, 4)).astype(np.float64)

        def loss(xv, ev):
            out = inter.forward(xv.astype(np.float32), [ev.astype(np.float32)])
            return float((out.astype(np.float64) ** 2).sum())

        out = inter.forward(x.astype(np.float32), [e.astype(np.float32)])
        grad_dense, grad_embs = inter.backward((2 * out).astype(np.float32))
        eps = 1e-4
        for arr, grad, which in ((x, grad_dense, "x"), (e, grad_embs[0], "e")):
            idx = (1, 2)
            old = arr[idx]
            arr[idx] = old + eps
            up = loss(x, e)
            arr[idx] = old - eps
            down = loss(x, e)
            arr[idx] = old
            numeric = (up - down) / (2 * eps)
            assert numeric == pytest.approx(float(grad[idx]), rel=0.02, abs=1e-3), which


class TestSequenceAttention:
    def test_output_is_convex_combination(self, rng):
        attn = SequenceAttention(dim=4, rng=rng)
        seq = rng.normal(size=(2, 5, 4)).astype(np.float32)
        out = attn.forward(seq)
        assert out.shape == (2, 4)
        # Each output lies within the min/max envelope of the sequence.
        assert np.all(out <= seq.max(axis=1) + 1e-5)
        assert np.all(out >= seq.min(axis=1) - 1e-5)

    def test_uniform_sequence_passthrough(self, rng):
        attn = SequenceAttention(dim=3, rng=rng)
        seq = np.ones((1, 7, 3), dtype=np.float32) * 2.5
        np.testing.assert_allclose(attn.forward(seq), 2.5, rtol=1e-6)

    def test_shape_validation(self, rng):
        attn = SequenceAttention(dim=4, rng=rng)
        with pytest.raises(ValueError):
            attn.forward(np.zeros((2, 5, 3)))
        with pytest.raises(ValueError):
            attn.forward(np.zeros((2, 5)))

    def test_backward_before_forward(self, rng):
        with pytest.raises(RuntimeError):
            SequenceAttention(4, rng).backward(np.zeros((1, 4)))

    def test_numeric_gradient_sequence(self, rng):
        attn = SequenceAttention(dim=3, rng=rng)
        seq = rng.normal(size=(2, 4, 3)).astype(np.float64)

        def loss(s):
            return float((attn.forward(s.astype(np.float32)).astype(np.float64) ** 2).sum())

        out = attn.forward(seq.astype(np.float32))
        grad_seq = attn.backward((2 * out).astype(np.float32))
        attn.query.zero_grad()
        eps = 1e-4
        idx = (1, 2, 0)
        old = seq[idx]
        seq[idx] = old + eps
        up = loss(seq)
        seq[idx] = old - eps
        down = loss(seq)
        seq[idx] = old
        assert (up - down) / (2 * eps) == pytest.approx(float(grad_seq[idx]), rel=0.03, abs=1e-3)

    def test_numeric_gradient_query(self, rng):
        attn = SequenceAttention(dim=3, rng=rng)
        seq = rng.normal(size=(2, 4, 3)).astype(np.float32)

        def loss():
            return float((attn.forward(seq).astype(np.float64) ** 2).sum())

        out = attn.forward(seq)
        attn.backward((2 * out).astype(np.float32))
        grad_q = attn.query.densified_grad().copy()
        attn.query.zero_grad()
        eps = 1e-4
        old = attn.query.value[1]
        attn.query.value[1] = old + eps
        up = loss()
        attn.query.value[1] = old - eps
        down = loss()
        attn.query.value[1] = old
        assert (up - down) / (2 * eps) == pytest.approx(float(grad_q[1]), rel=0.03, abs=1e-3)

    def test_rejects_bad_dim(self, rng):
        with pytest.raises(ValueError):
            SequenceAttention(0, rng)
