"""Tests for the repro bench suite and its regression gate (repro.obs.bench)."""

import copy
import json

import pytest

from repro.cli import main
from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    BenchConfig,
    compare_bench,
    format_compare,
    format_snapshot,
    run_bench,
)


@pytest.fixture(scope="module")
def quick_snapshot(tmp_path_factory):
    """One quick suite run shared by the module (it costs seconds)."""
    out_dir = tmp_path_factory.mktemp("bench")
    snapshot, path = run_bench(BenchConfig.quick_preset(seed=7), out_dir)
    return snapshot, path


class TestRunBench:
    def test_snapshot_schema_and_sections(self, quick_snapshot):
        snapshot, path = quick_snapshot
        assert snapshot["schema_version"] == BENCH_SCHEMA_VERSION
        assert snapshot["kind"] == "bench"
        assert snapshot["quick"] is True
        assert snapshot["seed"] == 7
        assert set(snapshot["sections"]) == {"preprocess", "train", "serve", "cache"}
        assert path.name.startswith("BENCH_") and path.suffix == ".json"
        assert json.loads(path.read_text(encoding="utf-8")) == snapshot

    def test_section_metrics_present_and_sane(self, quick_snapshot):
        sections = quick_snapshot[0]["sections"]
        assert sections["preprocess"]["rows_per_sec"] > 0
        assert sections["preprocess"]["rss_peak_bytes"] > 0
        assert sections["train"]["steps"] > 0
        assert sections["train"]["step_mean_s"] > 0
        assert 0 <= sections["train"]["sync_share"] <= 1
        assert sections["train"]["sync_events"] > 0
        assert sections["serve"]["p50_s"] <= sections["serve"]["p99_s"]
        assert sections["serve"]["rows_per_sec"] > 0
        assert sections["cache"]["hit_margin"] > 0.2
        assert sections["cache"]["cached_hit_rate"] > sections["cache"]["static_hit_rate"]
        assert sections["cache"]["promotions"] > 0

    def test_section_subset(self, tmp_path):
        snapshot, _ = run_bench(
            BenchConfig.quick_preset(), tmp_path, sections=("serve",)
        )
        assert set(snapshot["sections"]) == {"serve"}

    def test_unknown_section_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown bench sections"):
            run_bench(BenchConfig.quick_preset(), tmp_path, sections=("gpu",))

    def test_format_snapshot_smoke(self, quick_snapshot):
        text = format_snapshot(quick_snapshot[0])
        assert "preprocess:" in text and "train:" in text and "serve:" in text
        assert "cache:" in text and "margin" in text


def _synthetic(**sections):
    return {"schema_version": BENCH_SCHEMA_VERSION, "sections": sections}


class TestCompareBench:
    BASE = _synthetic(
        preprocess={"rows_per_sec": 1000.0},
        train={"step_mean_s": 0.010, "step_p99_s": 0.020, "sync_share": 0.10},
        serve={"p50_s": 0.002, "p99_s": 0.004, "rows_per_sec": 50_000.0},
    )

    def test_identical_snapshots_pass(self):
        result = compare_bench(self.BASE, copy.deepcopy(self.BASE))
        assert result["regressions"] == []
        assert all(e["status"] in ("ok", "missing") for e in result["entries"])

    def test_throughput_drop_is_a_regression(self):
        current = copy.deepcopy(self.BASE)
        current["sections"]["preprocess"]["rows_per_sec"] = 500.0  # -50%
        result = compare_bench(current, self.BASE, threshold=0.25)
        assert "preprocess.rows_per_sec" in result["regressions"]

    def test_latency_rise_is_a_regression(self):
        current = copy.deepcopy(self.BASE)
        current["sections"]["serve"]["p99_s"] = 0.010  # +150%
        result = compare_bench(current, self.BASE, threshold=0.25)
        assert result["regressions"] == ["serve.p99_s"]

    def test_improvement_is_never_a_regression(self):
        current = copy.deepcopy(self.BASE)
        current["sections"]["serve"]["p99_s"] = 0.0001
        current["sections"]["preprocess"]["rows_per_sec"] = 1e9
        assert compare_bench(current, self.BASE)["regressions"] == []

    def test_within_threshold_is_ok(self):
        current = copy.deepcopy(self.BASE)
        current["sections"]["train"]["step_mean_s"] = 0.012  # +20% < 25%
        assert compare_bench(current, self.BASE, threshold=0.25)["regressions"] == []

    def test_missing_metric_is_skipped_not_failed(self):
        current = _synthetic(serve={"p50_s": 0.002})
        result = compare_bench(current, self.BASE)
        statuses = {e["metric"]: e["status"] for e in result["entries"]}
        assert statuses["preprocess.rows_per_sec"] == "missing"
        assert result["regressions"] == []

    def test_schema_mismatch_raises(self):
        stale = dict(self.BASE, schema_version=BENCH_SCHEMA_VERSION + 1)
        with pytest.raises(ValueError, match="schema_version"):
            compare_bench(self.BASE, stale)

    def test_format_compare_flags_regressions(self):
        current = copy.deepcopy(self.BASE)
        current["sections"]["serve"]["p99_s"] = 0.010
        text = format_compare(compare_bench(current, self.BASE))
        assert "REGRESSION" in text
        assert "serve.p99_s" in text


class TestBenchCli:
    def _doctored_baseline(self, snapshot, tmp_path):
        """A baseline so much better that the real run must look regressed."""
        baseline = copy.deepcopy(snapshot)
        sections = baseline["sections"]
        sections["preprocess"]["rows_per_sec"] *= 100
        sections["serve"]["rows_per_sec"] *= 100
        sections["train"]["step_mean_s"] /= 100
        sections["serve"]["p99_s"] /= 100
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(baseline), encoding="utf-8")
        return path

    def test_check_against_identical_baseline_exits_0(self, quick_snapshot, tmp_path):
        _, snap_path = quick_snapshot
        assert main(["bench", "--check", str(snap_path), "--baseline", str(snap_path)]) == 0

    def test_regression_exits_4(self, quick_snapshot, tmp_path):
        snapshot, snap_path = quick_snapshot
        baseline = self._doctored_baseline(snapshot, tmp_path)
        code = main(["bench", "--check", str(snap_path), "--baseline", str(baseline)])
        assert code == 4

    def test_warn_only_downgrades_to_0(self, quick_snapshot, tmp_path):
        snapshot, snap_path = quick_snapshot
        baseline = self._doctored_baseline(snapshot, tmp_path)
        code = main(
            [
                "bench",
                "--check",
                str(snap_path),
                "--baseline",
                str(baseline),
                "--warn-only",
            ]
        )
        assert code == 0

    def test_quick_run_writes_snapshot_under_out_dir(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        code = main(
            [
                "bench",
                "--quick",
                "--seed",
                "7",
                "--out-dir",
                str(out_dir),
                "--sections",
                "serve",
            ]
        )
        assert code == 0
        written = list(out_dir.glob("BENCH_*.json"))
        assert len(written) == 1
        assert "serve:" in capsys.readouterr().out

    def test_committed_seed_baseline_is_loadable(self):
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / "benchmarks" / "baselines"
        seed = path / "BENCH_seed.json"
        assert seed.exists(), "committed seed baseline missing"
        snapshot = json.loads(seed.read_text(encoding="utf-8"))
        assert snapshot["schema_version"] == BENCH_SCHEMA_VERSION
        assert set(snapshot["sections"]) == {"preprocess", "train", "serve", "cache"}
