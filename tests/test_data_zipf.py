"""Unit tests for repro.data.zipf."""

import numpy as np
import pytest

from repro.data.zipf import (
    ZipfSampler,
    fit_zipf_exponent,
    generalized_harmonic,
    zipf_head_share,
    zipf_probabilities,
    zipf_rows_above_probability,
    zipf_top_k_coverage,
)


class TestZipfProbabilities:
    def test_sums_to_one(self):
        probs = zipf_probabilities(1000, 1.1)
        assert probs.sum() == pytest.approx(1.0)

    def test_monotone_decreasing_by_rank(self):
        probs = zipf_probabilities(500, 0.9)
        assert np.all(np.diff(probs) <= 0)

    def test_zero_exponent_is_uniform(self):
        probs = zipf_probabilities(10, 0.0)
        assert np.allclose(probs, 0.1)

    def test_higher_exponent_concentrates_head(self):
        light = zipf_probabilities(1000, 0.8)
        heavy = zipf_probabilities(1000, 1.6)
        assert heavy[0] > light[0]
        assert heavy[-1] < light[-1]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(ValueError):
            zipf_probabilities(10, -0.1)


class TestHeadShare:
    def test_full_head_is_total_mass(self):
        assert zipf_head_share(100, 1.2, 1.0) == pytest.approx(1.0)

    def test_share_grows_with_fraction(self):
        small = zipf_head_share(10_000, 1.0, 0.01)
        large = zipf_head_share(10_000, 1.0, 0.10)
        assert large > small > 0

    def test_kaggle_like_skew(self):
        # The paper's headline: a few percent of rows capture most accesses.
        share = zipf_head_share(10_131_227, 1.1, 0.068)
        assert share > 0.75

    def test_rejects_out_of_range_fraction(self):
        with pytest.raises(ValueError):
            zipf_head_share(100, 1.0, 0.0)
        with pytest.raises(ValueError):
            zipf_head_share(100, 1.0, 1.5)


class TestGeneralizedHarmonic:
    def test_matches_exact_sum_small(self):
        n, s = 5000, 1.3
        exact = float((np.arange(1, n + 1) ** -s).sum())
        assert generalized_harmonic(n, s) == pytest.approx(exact, rel=1e-10)

    def test_matches_exact_sum_large(self):
        n, s = 3_000_000, 1.1
        exact = float((np.arange(1, n + 1, dtype=np.float64) ** -s).sum())
        assert generalized_harmonic(n, s) == pytest.approx(exact, rel=1e-8)

    def test_s_equal_one_large(self):
        n = 10_000_000
        approx = generalized_harmonic(n, 1.0)
        assert approx == pytest.approx(np.log(n) + 0.5772156649, rel=1e-6)

    def test_monotone_in_n(self):
        assert generalized_harmonic(2000, 1.2) < generalized_harmonic(200000, 1.2)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            generalized_harmonic(0, 1.0)
        with pytest.raises(ValueError):
            generalized_harmonic(10, -1.0)


class TestCoverageHelpers:
    def test_top_k_coverage_limits(self):
        assert zipf_top_k_coverage(1000, 1.1, 0) == 0.0
        assert zipf_top_k_coverage(1000, 1.1, 1000) == pytest.approx(1.0)
        assert zipf_top_k_coverage(1000, 1.1, 2000) == pytest.approx(1.0)

    def test_coverage_matches_probability_vector(self):
        n, s, k = 5000, 1.15, 137
        probs = zipf_probabilities(n, s)
        assert zipf_top_k_coverage(n, s, k) == pytest.approx(probs[:k].sum(), rel=1e-9)

    def test_rows_above_probability_consistency(self):
        n, s = 100_000, 1.2
        probs = zipf_probabilities(n, s)
        for t in (probs[0] * 2, probs[10], probs[500], probs[-1] / 2):
            expected = int(np.count_nonzero(probs >= t * (1 - 1e-12)))
            got = zipf_rows_above_probability(n, s, t)
            assert abs(got - expected) <= 1

    def test_rows_above_zero_probability_is_all(self):
        assert zipf_rows_above_probability(100, 1.0, 0.0) == 100

    def test_uniform_threshold_all_or_nothing(self):
        assert zipf_rows_above_probability(100, 0.0, 0.005) == 100
        assert zipf_rows_above_probability(100, 0.0, 0.5) == 0


class TestZipfSampler:
    def test_sample_shape_and_range(self):
        sampler = ZipfSampler(num_items=50, exponent=1.1, seed=7)
        ids = sampler.sample(2000)
        assert ids.shape == (2000,)
        assert ids.min() >= 0 and ids.max() < 50

    def test_deterministic_given_seed(self):
        a = ZipfSampler(100, 1.0, seed=5).sample(100)
        b = ZipfSampler(100, 1.0, seed=5).sample(100)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ZipfSampler(100, 1.0, seed=5).sample(200)
        b = ZipfSampler(100, 1.0, seed=6).sample(200)
        assert not np.array_equal(a, b)

    def test_empirical_frequency_matches_probability(self):
        sampler = ZipfSampler(num_items=20, exponent=1.2, seed=9)
        draws = sampler.sample(200_000)
        counts = np.bincount(draws, minlength=20) / 200_000
        np.testing.assert_allclose(counts, sampler.id_probabilities(), atol=0.01)

    def test_hot_ids_cover_requested_share(self):
        sampler = ZipfSampler(num_items=1000, exponent=1.3, seed=2)
        hot = sampler.hot_ids(0.9)
        probs = sampler.id_probabilities()
        assert probs[hot].sum() >= 0.9
        assert len(hot) < 1000

    def test_hot_ids_scattered_by_permutation(self):
        sampler = ZipfSampler(num_items=1000, exponent=1.3, seed=2)
        hot = sampler.hot_ids(0.5)
        # With a random permutation the hot ids should not be clustered
        # at the front of the id space.
        assert hot.max() > 500

    def test_probability_of_id_matches_vector(self):
        sampler = ZipfSampler(num_items=64, exponent=1.0, seed=3)
        probs = sampler.id_probabilities()
        for item in (0, 17, 63):
            assert sampler.probability_of_id(item) == pytest.approx(probs[item])

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler(10, 1.0).sample(-1)


class TestFitExponent:
    def test_recovers_exponent_roughly(self):
        n = 2000
        probs = zipf_probabilities(n, 1.2)
        rng = np.random.default_rng(0)
        counts = rng.multinomial(2_000_000, probs)
        fitted = fit_zipf_exponent(counts, min_count=5)
        assert 0.9 < fitted < 1.5

    def test_needs_two_items(self):
        with pytest.raises(ValueError):
            fit_zipf_exponent(np.array([10]), min_count=1)
