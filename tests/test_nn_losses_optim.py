"""Unit tests for BCEWithLogits and the optimizers."""

import numpy as np
import pytest

from repro.nn import Adagrad, BCEWithLogits, Parameter, SGD
from repro.nn.activations import sigmoid


class TestBCEWithLogits:
    def test_matches_reference(self):
        loss_fn = BCEWithLogits()
        logits = np.array([0.5, -1.0, 2.0])
        labels = np.array([1.0, 0.0, 1.0])
        probs = sigmoid(logits)
        reference = -(labels * np.log(probs) + (1 - labels) * np.log(1 - probs)).mean()
        assert loss_fn.forward(logits, labels) == pytest.approx(reference, rel=1e-8)

    def test_extreme_logits_finite(self):
        loss_fn = BCEWithLogits()
        loss = loss_fn.forward(np.array([1e4, -1e4]), np.array([0.0, 1.0]))
        assert np.isfinite(loss)
        assert loss > 100  # confidently wrong is very expensive

    def test_gradient_formula(self):
        loss_fn = BCEWithLogits()
        logits = np.array([0.3, -0.7])
        labels = np.array([1.0, 0.0])
        loss_fn.forward(logits, labels)
        grad = loss_fn.backward()
        expected = (sigmoid(logits) - labels) / 2
        np.testing.assert_allclose(grad, expected, rtol=1e-6)

    def test_numeric_gradient(self):
        loss_fn = BCEWithLogits()
        logits = np.array([0.2, -0.4, 1.3])
        labels = np.array([1.0, 1.0, 0.0])
        loss_fn.forward(logits, labels)
        grad = loss_fn.backward()
        eps = 1e-5
        for i in range(3):
            up = logits.copy()
            up[i] += eps
            down = logits.copy()
            down[i] -= eps
            numeric = (
                BCEWithLogits().forward(up, labels) - BCEWithLogits().forward(down, labels)
            ) / (2 * eps)
            assert numeric == pytest.approx(grad[i], rel=1e-3)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            BCEWithLogits().forward(np.zeros(3), np.zeros(2))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            BCEWithLogits().backward()

    def test_predictions(self):
        preds = BCEWithLogits.predictions(np.array([-1.0, 0.0, 1.0]))
        np.testing.assert_array_equal(preds, [0.0, 1.0, 1.0])


class TestSGD:
    def test_dense_step(self):
        p = Parameter("w", np.array([[1.0, 2.0]], dtype=np.float32))
        p.accumulate_dense(np.array([[1.0, -1.0]], dtype=np.float32))
        SGD([p], lr=0.5).step()
        np.testing.assert_allclose(p.value, [[0.5, 2.5]])

    def test_sparse_step_coalesces(self):
        p = Parameter("e", np.ones((4, 2), dtype=np.float32))
        p.accumulate_sparse(np.array([1, 1]), np.ones((2, 2), dtype=np.float32))
        opt = SGD([p], lr=0.1)
        opt.step()
        np.testing.assert_allclose(p.value[1], 0.8)  # two grads summed once
        np.testing.assert_allclose(p.value[0], 1.0)
        assert opt.last_sparse_rows == 1

    def test_sparse_matches_dense_equivalent(self):
        dense = Parameter("d", np.ones((5, 2), dtype=np.float32))
        sparse = Parameter("s", np.ones((5, 2), dtype=np.float32))
        g = np.zeros((5, 2), dtype=np.float32)
        g[2] = 3.0
        dense.accumulate_dense(g)
        sparse.accumulate_sparse(np.array([2]), np.full((1, 2), 3.0, dtype=np.float32))
        SGD([dense], lr=0.2).step()
        SGD([sparse], lr=0.2).step()
        np.testing.assert_allclose(dense.value, sparse.value)

    def test_step_clears_grads(self):
        p = Parameter("w", np.zeros((2, 2), dtype=np.float32))
        p.accumulate_dense(np.ones((2, 2), dtype=np.float32))
        SGD([p], lr=0.1).step()
        assert p.grad is None and p.sparse_grads == []

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)


class TestAdagrad:
    def test_first_step_is_unit_scaled(self):
        p = Parameter("w", np.zeros((1, 1), dtype=np.float32))
        p.accumulate_dense(np.array([[4.0]], dtype=np.float32))
        Adagrad([p], lr=0.1).step()
        # update = lr * g / sqrt(g^2) = lr * sign(g)
        np.testing.assert_allclose(p.value, [[-0.1]], rtol=1e-5)

    def test_accumulator_dampens_updates(self):
        p = Parameter("w", np.zeros((1, 1), dtype=np.float32))
        opt = Adagrad([p], lr=0.1)
        deltas = []
        for _ in range(3):
            before = p.value.copy()
            p.accumulate_dense(np.array([[1.0]], dtype=np.float32))
            opt.step()
            deltas.append(abs(float((p.value - before).item())))
        assert deltas[0] > deltas[1] > deltas[2]

    def test_sparse_rows_only_touch_state(self):
        p = Parameter("e", np.zeros((3, 2), dtype=np.float32))
        opt = Adagrad([p], lr=0.1)
        p.accumulate_sparse(np.array([1]), np.ones((1, 2), dtype=np.float32))
        opt.step()
        assert opt.last_sparse_rows == 1
        np.testing.assert_allclose(p.value[0], 0.0)
        assert p.value[1, 0] != 0.0

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            Adagrad([], lr=-0.1)
