"""Golden-value regression tests for the calibrated cost model.

The simulator's constants were fitted once against the paper's Table IV
and then frozen (DESIGN.md §6); every benchmark assertion depends on
them.  These tests pin the headline outputs with a ±2% tolerance so any
accidental recalibration — a changed efficiency factor, a reworked phase
— fails loudly here rather than silently shifting EXPERIMENTS.md.

If you change the cost model *intentionally*, re-run the benchmarks,
update EXPERIMENTS.md, and refresh these goldens in one commit.
"""

import pytest

from repro.hw import Cluster, PowerModel, TrainingSimulator, characterize
from repro.models import workload_by_name

#: (workload, gpus) -> (baseline minutes, fae minutes) for 10 epochs.
GOLDEN_TABLE4 = {
    ("RMC1", 1): (859.8, 461.2),
    ("RMC1", 4): (531.8, 367.1),
    ("RMC2", 1): (252.9, 128.4),
    ("RMC2", 4): (218.8, 111.5),
    ("RMC3", 1): (504.5, 187.3),
    ("RMC3", 4): (435.8, 155.5),
}

#: workload -> analytic hot-input fraction at the 256 MB budget.
GOLDEN_HOT_FRACTION = {"RMC1": 0.792, "RMC2": 0.744, "RMC3": 0.935}

#: workload -> per-GPU power reduction (%) at 4 GPUs.
GOLDEN_POWER_REDUCTION = {"RMC1": 4.2, "RMC2": 4.4, "RMC3": 7.5}


@pytest.fixture(scope="module")
def workloads():
    return {name: characterize(workload_by_name(name)) for name in ("RMC1", "RMC2", "RMC3")}


class TestGoldenTable4:
    @pytest.mark.parametrize("key", sorted(GOLDEN_TABLE4))
    def test_training_minutes(self, workloads, key):
        name, gpus = key
        sim = TrainingSimulator(Cluster(num_gpus=gpus), workloads[name])
        baseline, fae = GOLDEN_TABLE4[key]
        assert sim.training_minutes("baseline", epochs=10) == pytest.approx(baseline, rel=0.02)
        assert sim.training_minutes("fae", epochs=10) == pytest.approx(fae, rel=0.02)


class TestGoldenHotFractions:
    @pytest.mark.parametrize("name", sorted(GOLDEN_HOT_FRACTION))
    def test_hot_fraction(self, workloads, name):
        assert workloads[name].hot_fraction == pytest.approx(
            GOLDEN_HOT_FRACTION[name], abs=0.01
        )

    def test_hot_bytes_at_budget(self, workloads):
        for workload in workloads.values():
            assert workload.hot_bytes == pytest.approx(256 * 2**20, rel=0.02)


class TestGoldenPower:
    @pytest.mark.parametrize("name", sorted(GOLDEN_POWER_REDUCTION))
    def test_reduction(self, workloads, name):
        pm = PowerModel()
        sim = TrainingSimulator(Cluster(num_gpus=4), workloads[name])
        reduction = pm.reduction_percent(sim.epoch("baseline"), sim.epoch("fae"))
        assert reduction == pytest.approx(GOLDEN_POWER_REDUCTION[name], abs=0.5)


class TestGoldenHeadline:
    def test_average_4gpu_speedup(self, workloads):
        """The repository's headline number (README): ~2.07x."""
        speedups = [
            TrainingSimulator(Cluster(num_gpus=4), w).speedup()
            for w in workloads.values()
        ]
        average = sum(speedups) / len(speedups)
        assert average == pytest.approx(2.07, abs=0.06)
