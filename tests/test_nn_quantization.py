"""Tests for quantized embedding storage."""

import numpy as np
import pytest

from repro.nn import EmbeddingBag
from repro.nn.quantization import (
    Fp16EmbeddingTable,
    Int8EmbeddingTable,
    dequantize_fp16,
    dequantize_int8_rows,
    quantize_fp16,
    quantize_int8_rows,
)


class TestFp16Roundtrip:
    def test_small_relative_error(self, rng):
        values = rng.normal(size=(100, 8)).astype(np.float32)
        restored = dequantize_fp16(quantize_fp16(values))
        rel = np.abs(restored - values) / (np.abs(values) + 1e-8)
        assert rel.max() < 1e-3

    def test_idempotent(self, rng):
        values = rng.normal(size=(10, 4)).astype(np.float32)
        once = dequantize_fp16(quantize_fp16(values))
        twice = dequantize_fp16(quantize_fp16(once))
        np.testing.assert_array_equal(once, twice)


class TestInt8Roundtrip:
    def test_bounded_error(self, rng):
        values = rng.normal(size=(50, 16)).astype(np.float32)
        codes, scales = quantize_int8_rows(values)
        restored = dequantize_int8_rows(codes, scales)
        # error bounded by half a quantization step per row
        step = np.abs(values).max(axis=1) / 127.0
        assert np.all(np.abs(restored - values) <= step[:, None] * 0.51 + 1e-7)

    def test_zero_rows_safe(self):
        values = np.zeros((3, 4), dtype=np.float32)
        codes, scales = quantize_int8_rows(values)
        np.testing.assert_array_equal(dequantize_int8_rows(codes, scales), 0.0)

    def test_codes_in_range(self, rng):
        values = (rng.normal(size=(20, 8)) * 100).astype(np.float32)
        codes, _ = quantize_int8_rows(values)
        assert codes.min() >= -127 and codes.max() <= 127

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            quantize_int8_rows(np.zeros(5, dtype=np.float32))

    def test_int8_noisier_than_fp16(self, rng):
        values = rng.normal(size=(200, 16)).astype(np.float32)
        fp16_err = np.abs(dequantize_fp16(quantize_fp16(values)) - values).mean()
        codes, scales = quantize_int8_rows(values)
        int8_err = np.abs(dequantize_int8_rows(codes, scales) - values).mean()
        assert int8_err > fp16_err


@pytest.mark.parametrize("table_cls", [Fp16EmbeddingTable, Int8EmbeddingTable])
class TestQuantizedTables:
    def test_footprint_smaller_than_fp32(self, table_cls, rng):
        table = table_cls("q", num_rows=100, dim=16, rng=rng)
        fp32_bytes = 100 * 16 * 4
        assert table.nbytes < fp32_bytes
        if table_cls is Fp16EmbeddingTable:
            assert table.nbytes == fp32_bytes // 2

    def test_embedding_bag_compatible(self, table_cls, rng):
        table = table_cls("q", num_rows=30, dim=8, rng=rng)
        bag = EmbeddingBag(table, mode="mean")
        out = bag.forward(np.array([[0, 1], [2, 3]]))
        assert out.shape == (2, 8)
        bag.backward(np.ones((2, 8), dtype=np.float32))
        assert table.weight.sparse_grads

    def test_requantize_injects_bounded_noise(self, table_cls, rng):
        table = table_cls("q", num_rows=20, dim=8, rng=rng)
        table.weight.value += 0.01  # simulate an optimizer step
        before = table.weight.value.copy()
        table.requantize()
        drift = np.abs(table.weight.value - before).max()
        assert drift < 0.05  # bounded rounding, not corruption
        # And the working copy is now exactly representable.
        snapshot = table.weight.value.copy()
        table.requantize()
        np.testing.assert_array_equal(table.weight.value, snapshot)

    def test_partial_requantize(self, table_cls, rng):
        table = table_cls("q", num_rows=20, dim=8, rng=rng)
        table.weight.value[:] += 0.37
        untouched = table.weight.value[10:].copy()
        table.requantize(np.arange(5))
        np.testing.assert_array_equal(table.weight.value[10:], untouched)

    def test_write_rows_requantizes(self, table_cls, rng):
        table = table_cls("q", num_rows=10, dim=4, rng=rng)
        payload = np.full((2, 4), 0.123456789, dtype=np.float32)
        table.write_rows(np.array([0, 1]), payload)
        # stored value is the quantized representative, not raw fp32
        stored = table.weight.value[0, 0]
        assert stored == pytest.approx(0.123456789, rel=2e-2)

    def test_subset_returns_copy(self, table_cls, rng):
        table = table_cls("q", num_rows=10, dim=4, rng=rng)
        rows = table.subset(np.array([1, 2]))
        rows[:] = 42.0
        assert table.weight.value[1, 0] != 42.0

    def test_bad_geometry_rejected(self, table_cls, rng):
        with pytest.raises(ValueError):
            table_cls("q", num_rows=0, dim=4, rng=rng)


class TestQuantizedTraining:
    def test_dlrm_trains_with_fp16_tables(self, rng):
        """A DLRM with fp16 embedding storage must still converge."""
        from repro.data import SyntheticClickLog, SyntheticConfig
        from repro.data.loader import batch_from_log
        from repro.data.schema import DatasetSchema, EmbeddingTableSpec
        from repro.models.dlrm import DLRM, DLRMConfig
        from repro.nn import BCEWithLogits, SGD

        schema = DatasetSchema(
            "q", 3,
            (
                EmbeddingTableSpec("t0", num_rows=50, dim=4, zipf_exponent=1.0),
                EmbeddingTableSpec("t1", num_rows=30, dim=4, zipf_exponent=1.0),
            ),
            300,
        )
        log = SyntheticClickLog(schema, SyntheticConfig(num_samples=300, seed=1))
        model = DLRM(schema, DLRMConfig("3-8-4", "8-1", seed=2))
        # Swap in quantized tables.
        quant_tables = {}
        for spec in schema.tables:
            table = Fp16EmbeddingTable(spec.name, spec.num_rows, spec.dim, rng)
            quant_tables[spec.name] = table
            model._tables[spec.name] = table
            model.set_bag(spec.name, EmbeddingBag(table, mode="mean"))

        loss_fn = BCEWithLogits()
        opt = SGD(model.parameters(), lr=0.2)
        batch = batch_from_log(log, np.arange(256))
        first = None
        for _ in range(25):
            loss = loss_fn.forward(model.forward(batch), batch.labels)
            model.backward(loss_fn.backward())
            opt.step()
            for table in quant_tables.values():
                table.requantize()
            first = first or loss
        assert loss < first
