"""Tests for the Criteo/Taobao format parsers and the ClickLog container."""

import numpy as np
import pytest

from repro.core import FAEConfig, fae_preprocess
from repro.data import (
    ClickLog,
    SyntheticClickLog,
    SyntheticConfig,
    criteo_kaggle_like,
    criteo_tsv_lines,
    parse_criteo_tsv,
    parse_taobao_events,
    train_test_split,
)
from repro.data.formats import NUM_CRITEO_CATS, NUM_CRITEO_INTS
from repro.data.schema import DatasetSchema, EmbeddingTableSpec


def criteo_line(label=1, ints=None, cats=None):
    ints = ints if ints is not None else [str(i) for i in range(NUM_CRITEO_INTS)]
    cats = cats if cats is not None else [f"{i:08x}" for i in range(NUM_CRITEO_CATS)]
    return "\t".join([str(label), *ints, *cats])


class TestClickLog:
    def make(self, n=6):
        schema = DatasetSchema(
            "cl", 2,
            (
                EmbeddingTableSpec("a", num_rows=10, dim=4),
                EmbeddingTableSpec("b", num_rows=5, dim=4, multiplicity=2),
            ),
            n,
        )
        rng = np.random.default_rng(0)
        return ClickLog(
            schema=schema,
            dense=rng.normal(size=(n, 2)),
            sparse={
                "a": rng.integers(0, 10, size=(n, 1)),
                "b": rng.integers(0, 5, size=(n, 2)),
            },
            labels=rng.integers(0, 2, size=n).astype(np.float32),
        )

    def test_access_counts(self):
        log = self.make()
        counts = log.access_counts("b")
        assert counts.sum() == 12
        assert counts.shape == (5,)

    def test_take(self):
        log = self.make()
        sub = log.take(np.array([0, 2]))
        assert len(sub) == 2
        np.testing.assert_array_equal(sub.labels, log.labels[[0, 2]])

    def test_rejects_out_of_range_ids(self):
        schema = DatasetSchema(
            "cl", 1, (EmbeddingTableSpec("a", num_rows=3, dim=2),), 2
        )
        with pytest.raises(ValueError):
            ClickLog(
                schema=schema,
                dense=np.zeros((2, 1)),
                sparse={"a": np.array([[0], [3]])},
                labels=np.zeros(2),
            )

    def test_rejects_missing_table(self):
        schema = DatasetSchema(
            "cl", 1, (EmbeddingTableSpec("a", num_rows=3, dim=2),), 2
        )
        with pytest.raises(ValueError):
            ClickLog(schema, np.zeros((2, 1)), {}, np.zeros(2))

    def test_works_with_fae_pipeline(self):
        """A plain ClickLog must flow through the full static pipeline."""
        rng = np.random.default_rng(1)
        n = 2000
        schema = DatasetSchema(
            "cl", 2,
            (
                EmbeddingTableSpec("a", num_rows=500, dim=8),
                EmbeddingTableSpec("b", num_rows=100, dim=8),
            ),
            n,
        )
        # Skewed ids so a hot set exists.
        ids_a = (rng.pareto(1.3, size=(n, 1)) * 20).astype(np.int64) % 500
        ids_b = (rng.pareto(1.3, size=(n, 1)) * 10).astype(np.int64) % 100
        log = ClickLog(
            schema=schema,
            dense=rng.normal(size=(n, 2)),
            sparse={"a": ids_a, "b": ids_b},
            labels=rng.integers(0, 2, size=n).astype(np.float32),
        )
        config = FAEConfig(
            gpu_memory_budget=8 * 1024, large_table_min_bytes=512, chunk_size=16
        )
        plan = fae_preprocess(log, config, batch_size=64)
        assert 0 < plan.hot_input_fraction <= 1
        train, test = train_test_split(log, 0.2)
        assert len(train) + len(test) == n


class TestCriteoParser:
    def test_parses_counts_and_shapes(self):
        lines = [criteo_line(label=i % 2) for i in range(10)]
        log = parse_criteo_tsv(lines, hash_buckets=1000)
        assert len(log) == 10
        assert log.schema.num_dense == 13
        assert log.schema.num_sparse == 26
        assert log.labels.sum() == 5

    def test_dense_log_transform(self):
        ints = ["7"] + ["0"] * 12
        log = parse_criteo_tsv([criteo_line(ints=ints)], hash_buckets=10)
        assert log.dense[0, 0] == pytest.approx(np.log1p(7))

    def test_missing_values_tolerated(self):
        ints = [""] * NUM_CRITEO_INTS
        cats = [""] * NUM_CRITEO_CATS
        log = parse_criteo_tsv([criteo_line(ints=ints, cats=cats)], hash_buckets=10)
        assert np.all(log.dense[0] == 0.0)
        assert log.sparse["table_00"].min() >= 0

    def test_negative_ints_clamped(self):
        ints = ["-5"] + ["1"] * 12
        log = parse_criteo_tsv([criteo_line(ints=ints)], hash_buckets=10)
        assert log.dense[0, 0] == 0.0

    def test_hashing_is_deterministic(self):
        lines = [criteo_line()]
        a = parse_criteo_tsv(lines, hash_buckets=997)
        b = parse_criteo_tsv(lines, hash_buckets=997)
        for name in a.schema.table_names:
            np.testing.assert_array_equal(a.sparse[name], b.sparse[name])

    def test_per_table_buckets(self):
        buckets = [10 + i for i in range(NUM_CRITEO_CATS)]
        log = parse_criteo_tsv([criteo_line()], hash_buckets=buckets)
        assert log.schema.table("table_25").num_rows == 35

    def test_same_token_same_bucket_distinct_tables_differ(self):
        cats = ["deadbeef"] * NUM_CRITEO_CATS
        log = parse_criteo_tsv([criteo_line(cats=cats)], hash_buckets=100000)
        first = int(log.sparse["table_00"][0, 0])
        second = int(log.sparse["table_01"][0, 0])
        assert first == second  # same token -> same hash per bucket count

    def test_max_rows(self):
        lines = [criteo_line() for _ in range(10)]
        assert len(parse_criteo_tsv(lines, hash_buckets=10, max_rows=4)) == 4

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            parse_criteo_tsv(["1\t2\t3"], hash_buckets=10)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            parse_criteo_tsv([], hash_buckets=10)

    def test_bad_bucket_config(self):
        with pytest.raises(ValueError):
            parse_criteo_tsv([criteo_line()], hash_buckets=[10])
        with pytest.raises(ValueError):
            parse_criteo_tsv([criteo_line()], hash_buckets=0)

    def test_file_path_source(self, tmp_path):
        path = tmp_path / "day0.tsv"
        path.write_text("\n".join(criteo_line() for _ in range(3)) + "\n")
        assert len(parse_criteo_tsv(path, hash_buckets=50)) == 3

    def test_roundtrip_with_synthetic_export(self):
        schema = criteo_kaggle_like("tiny")
        synthetic = SyntheticClickLog(schema, SyntheticConfig(num_samples=50, seed=3))
        lines = list(criteo_tsv_lines(synthetic))
        assert len(lines) == 50
        parsed = parse_criteo_tsv(lines, hash_buckets=4096)
        assert len(parsed) == 50
        np.testing.assert_array_equal(parsed.labels, synthetic.labels)


def taobao_lines(num_users=3, events_per_user=30, buy_every=5):
    lines = []
    for u in range(num_users):
        for t in range(events_per_user):
            behavior = "buy" if t % buy_every == 0 else "pv"
            lines.append(f"user{u},item{t % 7},cat{t % 3},{behavior},{1000 + t * 60}")
    return lines


class TestTaobaoParser:
    def test_window_construction(self):
        log = parse_taobao_events(taobao_lines(), seq_len=5)
        assert log.schema.num_dense == 3
        assert log.schema.table("table_01").multiplicity == 5
        # 3 users x (30 - 5) windows each
        assert len(log) == 3 * 25

    def test_labels_mark_next_purchase(self):
        lines = [
            "u,i1,c1,pv,100",
            "u,i2,c1,pv,200",
            "u,i3,c1,buy,300",
            "u,i4,c1,pv,400",
        ]
        log = parse_taobao_events(lines, seq_len=2)
        # windows: [i1,i2] -> next buy (1), [i2,i3] -> next pv (0)
        np.testing.assert_array_equal(log.labels, [1.0, 0.0])

    def test_dense_features(self):
        log = parse_taobao_events(taobao_lines(num_users=1), seq_len=5)
        # span of 4 minutes = 240 s -> log1p(240)
        assert log.dense[0, 0] == pytest.approx(np.log1p(240), rel=1e-5)
        assert 1 <= log.dense[0, 1] <= 3  # distinct categories
        assert 0 <= log.dense[0, 2] <= 1  # active share

    def test_short_users_skipped(self):
        lines = ["u,i,c,pv,1", "u,i,c,pv,2"]
        with pytest.raises(ValueError):
            parse_taobao_events(lines, seq_len=5)

    def test_unknown_behavior_rejected(self):
        with pytest.raises(ValueError):
            parse_taobao_events(["u,i,c,click,1"], seq_len=1)

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            parse_taobao_events(["u,i,c,pv"], seq_len=1)

    def test_max_samples(self):
        log = parse_taobao_events(taobao_lines(), seq_len=5, max_samples=7)
        assert len(log) == 7

    def test_vocab_ids_compact(self):
        log = parse_taobao_events(taobao_lines(), seq_len=5)
        items = log.schema.table("table_01")
        assert log.sparse["table_01"].max() == items.num_rows - 1

    def test_tbsm_trains_on_parsed_data(self):
        """Parsed Taobao windows must drive a real TBSM training step."""
        from repro.data.loader import batch_from_log
        from repro.models.tbsm import TBSM, TBSMConfig
        from repro.nn import BCEWithLogits, SGD

        log = parse_taobao_events(taobao_lines(num_users=4), seq_len=5)
        model = TBSM(log.schema, TBSMConfig("3-8", ts_hidden="9-6", top_mlp="9-8-1"))
        batch = batch_from_log(log, np.arange(16))
        loss_fn = BCEWithLogits()
        loss = loss_fn.forward(model.forward(batch), batch.labels)
        model.backward(loss_fn.backward())
        SGD(model.parameters(), lr=0.1).step()
        assert np.isfinite(loss)
