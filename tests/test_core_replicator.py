"""Unit tests for the Embedding Replicator and hot bags."""

import numpy as np
import pytest

from repro.core.classifier import HotEmbeddingBagSpec
from repro.core.replicator import EmbeddingReplicator, HotBag, HotEmbeddingBag
from repro.nn import EmbeddingTable


@pytest.fixture()
def table(rng):
    return EmbeddingTable("t", num_rows=30, dim=4, rng=rng)


@pytest.fixture()
def spec():
    return HotEmbeddingBagSpec(
        table_name="t",
        hot_ids=np.array([2, 5, 9, 17, 28], dtype=np.int64),
        num_rows=30,
        dim=4,
        whole_table=False,
    )


@pytest.fixture()
def replicator(table, spec):
    return EmbeddingReplicator({"t": table}, {"t": spec}, num_replicas=3)


class TestHotBag:
    def test_to_local_roundtrip(self, table, spec):
        bag = HotBag(spec, table.subset(spec.hot_ids))
        local = bag.to_local(np.array([5, 28, 2]))
        np.testing.assert_array_equal(spec.hot_ids[local], [5, 28, 2])

    def test_to_local_rejects_cold_ids(self, table, spec):
        bag = HotBag(spec, table.subset(spec.hot_ids))
        with pytest.raises(KeyError):
            bag.to_local(np.array([3]))
        with pytest.raises(KeyError):
            bag.to_local(np.array([29]))  # > max hot id, in range of table

    def test_contains(self, table, spec):
        bag = HotBag(spec, table.subset(spec.hot_ids))
        result = bag.contains(np.array([2, 3, 28, 29]))
        np.testing.assert_array_equal(result, [True, False, True, False])

    def test_values_are_copied(self, table, spec):
        values = table.subset(spec.hot_ids)
        bag = HotBag(spec, values)
        values[:] = 0
        assert not np.allclose(bag.weight.value, 0)

    def test_shape_validated(self, spec):
        with pytest.raises(ValueError):
            HotBag(spec, np.zeros((3, 4), dtype=np.float32))


class TestHotEmbeddingBag:
    def test_forward_matches_master(self, table, spec):
        hot_bag = HotEmbeddingBag(HotBag(spec, table.subset(spec.hot_ids)), mode="mean")
        from repro.nn import EmbeddingBag

        master_bag = EmbeddingBag(table, mode="mean")
        ids = np.array([[2, 5], [9, 9]])
        np.testing.assert_allclose(
            hot_bag.forward(ids), master_bag.forward(ids), rtol=1e-6
        )

    def test_backward_records_local_grads(self, table, spec):
        bag = HotEmbeddingBag(HotBag(spec, table.subset(spec.hot_ids)), mode="sum")
        bag.forward(np.array([[2, 5]]))
        bag.backward(np.ones((1, 4), dtype=np.float32))
        grads = bag.bag.weight.densified_grad()
        np.testing.assert_allclose(grads[0], 1.0)  # local row 0 == global 2
        np.testing.assert_allclose(grads[1], 1.0)  # local row 1 == global 5
        np.testing.assert_allclose(grads[2], 0.0)

    def test_sequence_interface(self, table, spec):
        bag = HotEmbeddingBag(HotBag(spec, table.subset(spec.hot_ids)))
        out = bag.sequence_forward(np.array([[2, 5, 9]]))
        assert out.shape == (1, 3, 4)
        bag.sequence_backward(np.ones((1, 3, 4), dtype=np.float32))
        assert bag.bag.weight.sparse_grads

    def test_cold_id_leak_detected(self, table, spec):
        bag = HotEmbeddingBag(HotBag(spec, table.subset(spec.hot_ids)))
        with pytest.raises(KeyError):
            bag.forward(np.array([[2, 3]]))

    def test_invalid_mode(self, table, spec):
        with pytest.raises(ValueError):
            HotEmbeddingBag(HotBag(spec, table.subset(spec.hot_ids)), mode="max")


class TestEmbeddingReplicator:
    def test_replicas_start_identical(self, replicator):
        assert replicator.max_replica_divergence() == 0.0

    def test_replica_matches_master_rows(self, replicator, table, spec):
        bag = replicator.replicas[1]["t"]
        np.testing.assert_allclose(bag.weight.value, table.weight.value[spec.hot_ids])

    def test_all_reduce_keeps_replicas_consistent(self, replicator):
        # Each replica accumulates a different sparse grad (as if each GPU
        # saw a different shard); after all-reduce + identical SGD steps
        # the replicas must agree bit-for-bit.
        for r, replica in enumerate(replicator.replicas):
            replica["t"].weight.accumulate_sparse(
                np.array([r]), np.full((1, 4), float(r + 1), dtype=np.float32)
            )
        replicator.all_reduce_gradients()
        from repro.nn import SGD

        for replica in replicator.replicas:
            SGD([replica["t"].weight], lr=0.1).step()
        assert replicator.max_replica_divergence() == 0.0

    def test_sync_to_master_writes_back(self, replicator, table, spec):
        replicator.replicas[0]["t"].weight.value[:] = 7.0
        moved = replicator.sync_to_master()
        assert moved == spec.num_hot * 4 * 4
        np.testing.assert_allclose(table.weight.value[spec.hot_ids], 7.0)

    def test_sync_to_master_leaves_cold_rows(self, replicator, table, spec):
        before = table.weight.value.copy()
        replicator.replicas[0]["t"].weight.value[:] = 7.0
        replicator.sync_to_master()
        cold = np.setdiff1d(np.arange(30), spec.hot_ids)
        np.testing.assert_allclose(table.weight.value[cold], before[cold])

    def test_sync_from_master_refreshes_all_replicas(self, replicator, table, spec):
        table.weight.value[spec.hot_ids] = 3.0
        replicator.sync_from_master()
        for replica in replicator.replicas:
            np.testing.assert_allclose(replica["t"].weight.value, 3.0)

    def test_sync_events_counted(self, replicator):
        replicator.sync_to_master()
        replicator.sync_from_master()
        assert replicator.sync_events == 2

    def test_total_hot_bytes(self, replicator, spec):
        assert replicator.total_hot_bytes() == spec.num_hot * 4 * 4

    def test_bags_for_replica(self, replicator):
        bags = replicator.bags_for_replica(2)
        assert set(bags) == {"t"}
        assert isinstance(bags["t"], HotEmbeddingBag)
        assert bags["t"].bag.replica_id == 2

    def test_missing_master_table_rejected(self, table, spec):
        with pytest.raises(KeyError):
            EmbeddingReplicator({}, {"t": spec})

    def test_bad_replica_count(self, table, spec):
        with pytest.raises(ValueError):
            EmbeddingReplicator({"t": table}, {"t": spec}, num_replicas=0)

    def test_roundtrip_preserves_training_semantics(self, table, spec):
        """cold -> hot -> cold roundtrip equals direct master updates."""
        replicator = EmbeddingReplicator({"t": table}, {"t": spec}, num_replicas=2)
        reference = table.weight.value.copy()

        replicator.sync_from_master()
        delta = np.full((spec.num_hot, 4), 0.25, dtype=np.float32)
        for replica in replicator.replicas:
            replica["t"].weight.value += delta
        replicator.sync_to_master()

        expected = reference.copy()
        expected[spec.hot_ids] += 0.25
        np.testing.assert_allclose(table.weight.value, expected, rtol=1e-6)
