"""Unit tests for embedding tables and bags."""

import numpy as np
import pytest

from repro.nn import EmbeddingBag, EmbeddingTable


@pytest.fixture()
def table(rng):
    return EmbeddingTable("t", num_rows=20, dim=4, rng=rng)


class TestEmbeddingTable:
    def test_init_shape_and_scale(self, table):
        assert table.weight.value.shape == (20, 4)
        # DLRM-style init: std ~ 1/sqrt(dim)
        assert table.weight.value.std() == pytest.approx(0.5, rel=0.5)

    def test_subset_is_a_copy(self, table):
        rows = table.subset(np.array([1, 3]))
        rows[:] = 99.0
        assert table.weight.value[1, 0] != 99.0

    def test_write_rows(self, table):
        values = np.ones((2, 4), dtype=np.float32)
        table.write_rows(np.array([0, 5]), values)
        np.testing.assert_allclose(table.weight.value[0], 1.0)
        np.testing.assert_allclose(table.weight.value[5], 1.0)

    def test_write_rows_shape_check(self, table):
        with pytest.raises(ValueError):
            table.write_rows(np.array([0]), np.ones((2, 4), dtype=np.float32))

    def test_rejects_bad_geometry(self, rng):
        with pytest.raises(ValueError):
            EmbeddingTable("t", 0, 4, rng)
        with pytest.raises(ValueError):
            EmbeddingTable("t", 4, 0, rng)

    def test_nbytes(self, table):
        assert table.nbytes == 20 * 4 * 4


class TestEmbeddingBagPooling:
    def test_mean_pooling(self, table):
        bag = EmbeddingBag(table, mode="mean")
        ids = np.array([[0, 1], [2, 2]])
        out = bag.forward(ids)
        expected0 = (table.weight.value[0] + table.weight.value[1]) / 2
        np.testing.assert_allclose(out[0], expected0, rtol=1e-6)
        np.testing.assert_allclose(out[1], table.weight.value[2], rtol=1e-6)

    def test_sum_pooling(self, table):
        bag = EmbeddingBag(table, mode="sum")
        ids = np.array([[0, 1]])
        out = bag.forward(ids)
        np.testing.assert_allclose(
            out[0], table.weight.value[0] + table.weight.value[1], rtol=1e-6
        )

    def test_1d_ids_promoted(self, table):
        bag = EmbeddingBag(table)
        out = bag.forward(np.array([3, 4]))
        assert out.shape == (2, 4)

    def test_out_of_range_ids(self, table):
        bag = EmbeddingBag(table)
        with pytest.raises(IndexError):
            bag.forward(np.array([[20]]))
        with pytest.raises(IndexError):
            bag.forward(np.array([[-1]]))

    def test_invalid_mode(self, table):
        with pytest.raises(ValueError):
            EmbeddingBag(table, mode="max")


class TestEmbeddingBagBackward:
    def test_mean_backward_scales_by_multiplicity(self, table):
        bag = EmbeddingBag(table, mode="mean")
        ids = np.array([[0, 1]])
        bag.forward(ids)
        bag.backward(np.ones((1, 4), dtype=np.float32))
        grad = table.weight.densified_grad()
        np.testing.assert_allclose(grad[0], 0.5)
        np.testing.assert_allclose(grad[1], 0.5)

    def test_sum_backward_full_grad(self, table):
        bag = EmbeddingBag(table, mode="sum")
        ids = np.array([[0, 1]])
        bag.forward(ids)
        bag.backward(np.ones((1, 4), dtype=np.float32))
        grad = table.weight.densified_grad()
        np.testing.assert_allclose(grad[0], 1.0)

    def test_duplicate_ids_accumulate(self, table):
        bag = EmbeddingBag(table, mode="sum")
        bag.forward(np.array([[7, 7]]))
        bag.backward(np.ones((1, 4), dtype=np.float32))
        np.testing.assert_allclose(table.weight.densified_grad()[7], 2.0)

    def test_backward_before_forward(self, table):
        with pytest.raises(RuntimeError):
            EmbeddingBag(table).backward(np.zeros((1, 4)))

    def test_numeric_gradient_mean(self, table):
        bag = EmbeddingBag(table, mode="mean")
        ids = np.array([[0, 1], [1, 2]])

        def loss():
            return float((bag.forward(ids) ** 2).sum())

        out = bag.forward(ids)
        bag.backward((2 * out).astype(np.float32))
        grad = table.weight.densified_grad()
        table.weight.zero_grad()
        eps = 1e-3
        row, col = 1, 2
        old = table.weight.value[row, col]
        table.weight.value[row, col] = old + eps
        up = loss()
        table.weight.value[row, col] = old - eps
        down = loss()
        table.weight.value[row, col] = old
        assert (up - down) / (2 * eps) == pytest.approx(grad[row, col], rel=0.02, abs=1e-4)


class TestSequenceInterface:
    def test_sequence_forward_shape(self, table):
        bag = EmbeddingBag(table)
        ids = np.array([[0, 1, 2], [3, 4, 5]])
        out = bag.sequence_forward(ids)
        assert out.shape == (2, 3, 4)
        np.testing.assert_allclose(out[0, 1], table.weight.value[1])

    def test_sequence_backward_scatters(self, table):
        bag = EmbeddingBag(table)
        ids = np.array([[0, 1]])
        bag.sequence_forward(ids)
        grads = np.stack([[np.full(4, 2.0), np.full(4, 3.0)]]).astype(np.float32)
        bag.sequence_backward(grads)
        dense = table.weight.densified_grad()
        np.testing.assert_allclose(dense[0], 2.0)
        np.testing.assert_allclose(dense[1], 3.0)

    def test_sequence_forward_requires_2d(self, table):
        with pytest.raises(ValueError):
            EmbeddingBag(table).sequence_forward(np.array([0, 1]))
