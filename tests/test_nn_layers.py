"""Unit tests for the nn substrate: parameters, linear, activations, MLP."""

import numpy as np
import pytest

from repro.nn import MLP, Linear, Parameter, ReLU, Sigmoid, SparseGrad
from repro.nn.activations import sigmoid
from repro.nn.initializers import normal_init, xavier_uniform
from repro.nn.mlp import parse_layer_spec


class TestParameter:
    def test_dense_accumulation(self):
        p = Parameter("w", np.zeros((2, 3), dtype=np.float32))
        p.accumulate_dense(np.ones((2, 3), dtype=np.float32))
        p.accumulate_dense(np.ones((2, 3), dtype=np.float32))
        np.testing.assert_allclose(p.grad, 2.0)

    def test_dense_shape_mismatch(self):
        p = Parameter("w", np.zeros((2, 3)))
        with pytest.raises(ValueError):
            p.accumulate_dense(np.zeros((3, 2)))

    def test_sparse_accumulation_and_densify(self):
        p = Parameter("e", np.zeros((5, 2), dtype=np.float32))
        p.accumulate_sparse(np.array([1, 1, 3]), np.ones((3, 2), dtype=np.float32))
        dense = p.densified_grad()
        np.testing.assert_allclose(dense[1], 2.0)
        np.testing.assert_allclose(dense[3], 1.0)
        np.testing.assert_allclose(dense[0], 0.0)

    def test_sparse_requires_2d_param(self):
        p = Parameter("b", np.zeros(4))
        with pytest.raises(ValueError):
            p.accumulate_sparse(np.array([0]), np.zeros((1, 1)))

    def test_sparse_dim_mismatch(self):
        p = Parameter("e", np.zeros((5, 2)))
        with pytest.raises(ValueError):
            p.accumulate_sparse(np.array([0]), np.zeros((1, 3)))

    def test_zero_grad_clears_everything(self):
        p = Parameter("e", np.zeros((5, 2)))
        p.accumulate_sparse(np.array([0]), np.ones((1, 2), dtype=np.float32))
        p.zero_grad()
        assert p.grad is None
        assert p.sparse_grads == []
        assert p.touched_rows().size == 0

    def test_touched_rows_unique_sorted(self):
        p = Parameter("e", np.zeros((10, 2)))
        p.accumulate_sparse(np.array([7, 2, 7]), np.zeros((3, 2), dtype=np.float32))
        p.accumulate_sparse(np.array([2, 9]), np.zeros((2, 2), dtype=np.float32))
        np.testing.assert_array_equal(p.touched_rows(), [2, 7, 9])

    def test_nbytes(self):
        p = Parameter("e", np.zeros((10, 4), dtype=np.float32))
        assert p.nbytes == 160


class TestSparseGrad:
    def test_coalesced_sums_duplicates(self):
        record = SparseGrad(
            ids=np.array([3, 1, 3]),
            values=np.array([[1.0, 0.0], [0.5, 0.5], [2.0, 1.0]], dtype=np.float32),
        )
        merged = record.coalesced()
        np.testing.assert_array_equal(merged.ids, [1, 3])
        np.testing.assert_allclose(merged.values, [[0.5, 0.5], [3.0, 1.0]])

    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            SparseGrad(ids=np.zeros((2, 2), dtype=np.int64), values=np.zeros((2, 2)))
        with pytest.raises(ValueError):
            SparseGrad(ids=np.zeros(3, dtype=np.int64), values=np.zeros((2, 2)))


class TestInitializers:
    def test_xavier_bounds(self, rng):
        w = xavier_uniform(100, 50, rng)
        limit = np.sqrt(6.0 / 150)
        assert w.shape == (100, 50)
        assert np.abs(w).max() <= limit

    def test_normal_std(self, rng):
        w = normal_init((10_000,), 0.5, rng)
        assert w.std() == pytest.approx(0.5, rel=0.05)

    def test_normal_rejects_negative_std(self, rng):
        with pytest.raises(ValueError):
            normal_init((2,), -1.0, rng)


class TestLinear:
    def test_forward_matches_manual(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(5, 3)).astype(np.float32)
        np.testing.assert_allclose(
            layer.forward(x), x @ layer.weight.value.T + layer.bias.value, rtol=1e-6
        )

    def test_backward_gradients(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3)).astype(np.float32)
        layer.forward(x)
        g = rng.normal(size=(4, 2)).astype(np.float32)
        grad_in = layer.backward(g)
        np.testing.assert_allclose(grad_in, g @ layer.weight.value, rtol=1e-6)
        np.testing.assert_allclose(layer.weight.grad, g.T @ x, rtol=1e-5)
        np.testing.assert_allclose(layer.bias.grad, g.sum(axis=0), rtol=1e-5)

    def test_backward_without_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Linear(2, 2, rng).backward(np.zeros((1, 2)))

    def test_input_width_checked(self, rng):
        layer = Linear(3, 2, rng)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 4)))

    def test_flops_per_sample(self, rng):
        assert Linear(10, 20, rng).flops_per_sample() == 2 * 10 * 20


class TestActivations:
    def test_sigmoid_stability(self):
        x = np.array([-1e4, -1.0, 0.0, 1.0, 1e4])
        y = sigmoid(x)
        assert np.all(np.isfinite(y))
        assert y[0] == pytest.approx(0.0, abs=1e-12)
        assert y[2] == pytest.approx(0.5)
        assert y[-1] == pytest.approx(1.0)

    def test_relu_forward_backward(self):
        relu = ReLU()
        x = np.array([[-1.0, 2.0], [3.0, -4.0]], dtype=np.float32)
        out = relu.forward(x)
        np.testing.assert_allclose(out, [[0.0, 2.0], [3.0, 0.0]])
        grad = relu.backward(np.ones_like(x))
        np.testing.assert_allclose(grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_sigmoid_module_backward(self):
        sig = Sigmoid()
        x = np.array([[0.0]], dtype=np.float32)
        y = sig.forward(x)
        grad = sig.backward(np.ones_like(x))
        np.testing.assert_allclose(grad, y * (1 - y))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.zeros((1, 1)))
        with pytest.raises(RuntimeError):
            Sigmoid().backward(np.zeros((1, 1)))


class TestParseLayerSpec:
    def test_parses(self):
        assert parse_layer_spec("13-512-256-64-16") == (13, 512, 256, 64, 16)

    @pytest.mark.parametrize("spec", ["", "12", "a-b", "4--2", "0-3"])
    def test_rejects_malformed(self, spec):
        with pytest.raises(ValueError):
            parse_layer_spec(spec)


class TestMLP:
    def test_shapes_flow(self, rng):
        mlp = MLP("4-8-2", rng)
        out = mlp.forward(np.zeros((7, 4), dtype=np.float32))
        assert out.shape == (7, 2)
        assert mlp.in_features == 4
        assert mlp.out_features == 2

    def test_final_activation_variants(self, rng):
        x = np.full((3, 4), -10.0, dtype=np.float32)
        relu_out = MLP("4-2", rng, final_activation="relu").forward(x)
        assert np.all(relu_out >= 0)
        sig_out = MLP("4-2", rng, final_activation="sigmoid").forward(x)
        assert np.all((sig_out > 0) & (sig_out < 1))
        raw_out = MLP("4-2", rng, final_activation=None).forward(x)
        assert raw_out.min() < 0 or raw_out.max() > 0  # unconstrained

    def test_unknown_activation_rejected(self, rng):
        with pytest.raises(ValueError):
            MLP("4-2", rng, final_activation="tanh")

    def test_parameter_count(self, rng):
        mlp = MLP("4-8-2", rng)
        assert mlp.num_parameters() == (4 * 8 + 8) + (8 * 2 + 2)

    def test_flops(self, rng):
        assert MLP("4-8-2", rng).flops_per_sample() == 2 * (4 * 8 + 8 * 2)

    def test_numeric_gradient(self, rng):
        mlp = MLP("3-5-1", rng, final_activation=None)
        x = rng.normal(size=(6, 3)).astype(np.float32)

        def loss():
            return float((mlp.forward(x) ** 2).sum())

        out = mlp.forward(x)
        mlp.backward((2.0 * out).astype(np.float32))
        for p in mlp.parameters():
            grad = p.densified_grad().copy()
            idx = np.unravel_index(np.argmax(np.abs(grad)), grad.shape)
            eps = 1e-3
            old = p.value[idx]
            p.value[idx] = old + eps
            up = loss()
            p.value[idx] = old - eps
            down = loss()
            p.value[idx] = old
            numeric = (up - down) / (2 * eps)
            assert numeric == pytest.approx(grad[idx], rel=0.05, abs=1e-3)
