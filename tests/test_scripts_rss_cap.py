"""The RLIMIT_AS wrapper backing CI's bounded-memory preprocess smoke."""

import subprocess
import sys
from pathlib import Path

RSS_CAP = Path(__file__).resolve().parents[1] / "scripts" / "rss_cap.py"


def run_capped(limit_mb: int, *command: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(RSS_CAP), "--limit-mb", str(limit_mb), "--", *command],
        capture_output=True,
        text=True,
    )


class TestRssCap:
    def test_command_within_cap_succeeds(self):
        result = run_capped(512, sys.executable, "-c", "print('ok')")
        assert result.returncode == 0
        assert "ok" in result.stdout

    def test_allocation_over_cap_fails(self):
        result = run_capped(
            128, sys.executable, "-c", "b = bytearray(512 * 1024 * 1024); print(len(b))"
        )
        assert result.returncode != 0
        assert "512" not in result.stdout

    def test_requires_a_command(self):
        result = subprocess.run(
            [sys.executable, str(RSS_CAP), "--limit-mb", "64"],
            capture_output=True,
            text=True,
        )
        assert result.returncode != 0
