"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ShuffleScheduler, all_hot_batch_probability
from repro.core.access_profile import TableProfile
from repro.core.classifier import HotEmbeddingBagSpec
from repro.core.config import FAEConfig
from repro.core.randem_box import RandEmBox
from repro.core.replicator import HotBag
from repro.data.zipf import (
    generalized_harmonic,
    zipf_probabilities,
    zipf_rows_above_probability,
    zipf_top_k_coverage,
)
from repro.nn import Parameter, SGD
from repro.nn.parameter import SparseGrad


class TestZipfProperties:
    @given(n=st.integers(2, 5000), s=st.floats(0.0, 2.5))
    @settings(max_examples=60, deadline=None)
    def test_probabilities_normalized_and_sorted(self, n, s):
        probs = zipf_probabilities(n, s)
        assert probs.sum() == pytest.approx(1.0, rel=1e-9)
        assert np.all(np.diff(probs) <= 1e-15)

    @given(n=st.integers(2, 100_000), s=st.floats(0.1, 2.0))
    @settings(max_examples=60, deadline=None)
    def test_harmonic_positive_and_bounded(self, n, s):
        h = generalized_harmonic(n, s)
        assert 1.0 <= h <= n  # between first term and uniform sum

    @given(
        n=st.integers(10, 50_000),
        s=st.floats(0.2, 2.0),
        k1=st.integers(1, 100),
        k2=st.integers(101, 5000),
    )
    @settings(max_examples=60, deadline=None)
    def test_coverage_monotone_in_k(self, n, s, k1, k2):
        assert zipf_top_k_coverage(n, s, k1) <= zipf_top_k_coverage(n, s, k2) + 1e-12

    @given(
        n=st.integers(10, 100_000),
        s=st.floats(0.3, 2.0),
        t1=st.floats(1e-9, 1e-2),
        t2=st.floats(1e-9, 1e-2),
    )
    @settings(max_examples=60, deadline=None)
    def test_rows_above_probability_antitone(self, n, s, t1, t2):
        lo, hi = min(t1, t2), max(t1, t2)
        assert zipf_rows_above_probability(n, s, lo) >= zipf_rows_above_probability(n, s, hi)


class TestSparseGradProperties:
    @given(
        ids=st.lists(st.integers(0, 49), min_size=1, max_size=60),
        dim=st.integers(1, 8),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_coalesced_preserves_total(self, ids, dim, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=(len(ids), dim)).astype(np.float32)
        record = SparseGrad(ids=np.array(ids, dtype=np.int64), values=values)
        merged = record.coalesced()
        assert len(np.unique(merged.ids)) == len(merged.ids)
        np.testing.assert_allclose(
            merged.values.sum(axis=0), values.sum(axis=0), rtol=1e-4, atol=1e-5
        )

    @given(
        ids=st.lists(st.integers(0, 19), min_size=1, max_size=40),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_sparse_step_equals_dense_step(self, ids, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=(len(ids), 3)).astype(np.float32)
        sparse_param = Parameter("s", np.ones((20, 3), dtype=np.float32))
        dense_param = Parameter("d", np.ones((20, 3), dtype=np.float32))
        sparse_param.accumulate_sparse(np.array(ids, dtype=np.int64), values)
        dense_grad = np.zeros((20, 3), dtype=np.float32)
        np.add.at(dense_grad, np.array(ids), values)
        dense_param.accumulate_dense(dense_grad)
        SGD([sparse_param], lr=0.05).step()
        SGD([dense_param], lr=0.05).step()
        np.testing.assert_allclose(sparse_param.value, dense_param.value, rtol=1e-5, atol=1e-6)


class TestSchedulerProperties:
    @given(
        hot=st.integers(0, 300),
        cold=st.integers(0, 300),
        rate=st.integers(1, 100),
    )
    @settings(max_examples=80, deadline=None)
    def test_every_batch_scheduled_once(self, hot, cold, rate):
        scheduler = ShuffleScheduler(hot, cold, initial_rate=rate)
        issued_hot = issued_cold = 0
        for segment in scheduler.segments():
            assert segment.num_batches > 0
            if segment.kind == "hot":
                issued_hot += segment.num_batches
            else:
                issued_cold += segment.num_batches
        assert issued_hot == hot
        assert issued_cold == cold

    @given(
        losses=st.lists(st.floats(0.01, 10.0), min_size=2, max_size=40),
        rate=st.integers(1, 100),
        u=st.integers(1, 8),
    )
    @settings(max_examples=80, deadline=None)
    def test_rate_stays_in_bounds_under_any_loss_sequence(self, losses, rate, u):
        scheduler = ShuffleScheduler(100, 100, initial_rate=rate, strip_length=u)
        for loss in losses:
            scheduler.record_test_loss(loss)
            assert 1 <= scheduler.rate <= 100


class TestHotBagProperties:
    @given(
        hot=st.sets(st.integers(0, 99), min_size=1, max_size=60),
        queries=st.lists(st.integers(0, 99), min_size=1, max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_contains_matches_set_membership(self, hot, queries):
        hot_ids = np.array(sorted(hot), dtype=np.int64)
        spec = HotEmbeddingBagSpec("t", hot_ids, num_rows=100, dim=2, whole_table=False)
        bag = HotBag(spec, np.zeros((len(hot_ids), 2), dtype=np.float32))
        result = bag.contains(np.array(queries, dtype=np.int64))
        expected = np.array([q in hot for q in queries])
        np.testing.assert_array_equal(result, expected)

    @given(hot=st.sets(st.integers(0, 99), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_to_local_inverts_hot_ids(self, hot):
        hot_ids = np.array(sorted(hot), dtype=np.int64)
        spec = HotEmbeddingBagSpec("t", hot_ids, num_rows=100, dim=2, whole_table=False)
        bag = HotBag(spec, np.zeros((len(hot_ids), 2), dtype=np.float32))
        local = bag.to_local(hot_ids)
        np.testing.assert_array_equal(local, np.arange(len(hot_ids)))


class TestRandEmProperties:
    @given(
        seed=st.integers(0, 50),
        zipf_a=st.floats(1.2, 2.5),
        min_count=st.integers(1, 30),
    )
    @settings(max_examples=25, deadline=None)
    def test_estimate_bounds_ordered_and_nonnegative(self, seed, zipf_a, min_count):
        rng = np.random.default_rng(seed)
        counts = rng.zipf(zipf_a, size=80_000).astype(np.int64)
        profile = TableProfile("t", counts, dim=4)
        config = FAEConfig(chunk_size=256, num_chunks=35)
        est = RandEmBox(config, seed=seed).estimate(profile, min_count)
        assert 0 <= est.hot_rows_lower <= est.hot_rows_mean <= est.hot_rows_upper
        assert est.hot_rows_upper <= profile.num_rows


class TestProbabilityProperties:
    @given(p=st.floats(0.0, 1.0), b=st.integers(1, 4096))
    @settings(max_examples=80, deadline=None)
    def test_all_hot_probability_valid(self, p, b):
        value = all_hot_batch_probability(p, b)
        assert 0.0 <= value <= 1.0
        assert value <= p or b == 0 or p in (0.0, 1.0) or value == pytest.approx(p)
