"""Tests for drift detection and recalibration support."""

import numpy as np
import pytest

from repro.core import (
    DriftDetector,
    fae_preprocess,
    recalibration_diff,
)
from repro.core.classifier import HotEmbeddingBagSpec
from repro.data import SyntheticClickLog, SyntheticConfig


@pytest.fixture(scope="module")
def plan_and_log(request):
    tiny_log = request.getfixturevalue("tiny_log")
    config = request.getfixturevalue("tiny_fae_config")
    plan = fae_preprocess(tiny_log, config, batch_size=64)
    return plan, tiny_log


class TestDriftDetector:
    def test_no_drift_on_same_distribution(self, plan_and_log, tiny_schema):
        plan, _log = plan_and_log
        # A fresh window from the SAME generative distribution (same seed
        # family -> same popularity permutation).
        window = SyntheticClickLog(tiny_schema, SyntheticConfig(num_samples=1500, seed=11))
        detector = DriftDetector(plan.bags, plan.hot_input_fraction, seed=1)
        report = detector.check(window)
        assert not report.drifted
        assert abs(report.relative_drop) < 0.15
        assert set(report.per_table_coverage) == set(tiny_schema.table_names)

    def test_drift_on_shifted_popularity(self, plan_and_log, tiny_schema):
        plan, _log = plan_and_log
        # A different seed re-permutes item popularity: yesterday's hot
        # rows are no longer the popular ones.
        shifted = SyntheticClickLog(tiny_schema, SyntheticConfig(num_samples=1500, seed=99))
        detector = DriftDetector(plan.bags, plan.hot_input_fraction, seed=1)
        report = detector.check(shifted)
        assert report.drifted
        assert report.hot_input_fraction < report.baseline_hot_input_fraction

    def test_coverage_bounds(self, plan_and_log, tiny_schema):
        plan, log = plan_and_log
        report = DriftDetector(plan.bags, plan.hot_input_fraction).check(log)
        for name, coverage in report.per_table_coverage.items():
            assert 0.0 <= coverage <= 1.0
        # The small always-hot table covers everything.
        assert report.per_table_coverage["table_02"] == 1.0

    def test_worst_table(self, plan_and_log, tiny_schema):
        plan, log = plan_and_log
        report = DriftDetector(plan.bags, plan.hot_input_fraction).check(log)
        worst = report.worst_table()
        assert report.per_table_coverage[worst] == min(report.per_table_coverage.values())

    def test_tolerance_validation(self, plan_and_log):
        plan, _ = plan_and_log
        with pytest.raises(ValueError):
            DriftDetector(plan.bags, plan.hot_input_fraction, tolerance=0.0)
        with pytest.raises(ValueError):
            DriftDetector(plan.bags, 1.5)

    def test_recalibration_restores_coverage(self, plan_and_log, tiny_schema, tiny_fae_config):
        """After drift, recalibrating on new traffic removes the flag."""
        plan, _ = plan_and_log
        shifted = SyntheticClickLog(tiny_schema, SyntheticConfig(num_samples=3000, seed=99))
        new_plan = fae_preprocess(shifted, tiny_fae_config, batch_size=64)
        detector = DriftDetector(new_plan.bags, new_plan.hot_input_fraction, seed=2)
        window = SyntheticClickLog(tiny_schema, SyntheticConfig(num_samples=1500, seed=99))
        assert not detector.check(window).drifted


class TestCheckSource:
    """Drift over a multi-day ShardChunkSource stream (one shard per day)."""

    @pytest.fixture(scope="class")
    def day_source(self, tiny_schema, tmp_path_factory):
        from repro.data.shift import popularity_shift_days, write_day_shards

        days = popularity_shift_days(
            tiny_schema, samples_per_day=1200, num_days=4, shift_day=2, seed=12
        )
        directory = tmp_path_factory.mktemp("day-shards")
        return days, write_day_shards(directory, days)

    def test_flags_rotated_days_not_before(self, day_source, tiny_fae_config):
        days, source = day_source
        plan = fae_preprocess(days[0], tiny_fae_config, batch_size=64)
        detector = DriftDetector(
            plan.bags, plan.hot_input_fraction, tolerance=0.6, seed=1
        )
        reports = list(detector.check_source(source))
        assert [index for index, _ in reports] == [0, 1, 2, 3]
        # Days 0-1 draw from the calibrated head; days 2-3 are rotated.
        assert not reports[0][1].drifted
        assert not reports[1][1].drifted
        assert reports[2][1].drifted
        assert reports[3][1].drifted

    def test_rotated_day_collapses_hot_fraction(self, day_source, tiny_fae_config):
        days, source = day_source
        plan = fae_preprocess(days[0], tiny_fae_config, batch_size=64)
        detector = DriftDetector(
            plan.bags, plan.hot_input_fraction, tolerance=0.6, seed=1
        )
        reports = dict(detector.check_source(source))
        assert (
            reports[2].hot_input_fraction
            < reports[1].hot_input_fraction
        )
        assert reports[2].relative_drop > 0.6


class TestRecalibrationDiff:
    def bag(self, ids, num_rows=20):
        return HotEmbeddingBagSpec(
            table_name="t",
            hot_ids=np.array(sorted(ids), dtype=np.int64),
            num_rows=num_rows,
            dim=4,
            whole_table=False,
        )

    def test_added_and_removed(self):
        old = {"t": self.bag([1, 2, 3])}
        new = {"t": self.bag([2, 3, 4, 5])}
        assert recalibration_diff(old, new) == {"t": (2, 1)}

    def test_identical_bags(self):
        bags = {"t": self.bag([1, 7])}
        assert recalibration_diff(bags, bags) == {"t": (0, 0)}

    def test_mismatched_tables_rejected(self):
        with pytest.raises(KeyError):
            recalibration_diff({"a": self.bag([1])}, {"b": self.bag([1])})

    def test_real_recalibration_diff(self, plan_and_log, tiny_schema, tiny_fae_config):
        plan, _ = plan_and_log
        shifted = SyntheticClickLog(tiny_schema, SyntheticConfig(num_samples=3000, seed=99))
        new_plan = fae_preprocess(shifted, tiny_fae_config, batch_size=64)
        diff = recalibration_diff(plan.bags, new_plan.bags)
        # The popularity permutation moved, so the large tables' hot sets
        # must change substantially; the whole-table bag must not.
        assert diff["table_00"][0] > 0
        assert diff["table_02"] == (0, 0)
