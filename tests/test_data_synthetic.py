"""Unit tests for repro.data.synthetic."""

import numpy as np
import pytest

from repro.data import SyntheticClickLog, SyntheticConfig
from repro.data.schema import DatasetSchema, EmbeddingTableSpec


@pytest.fixture(scope="module")
def schema():
    return DatasetSchema(
        name="syn",
        num_dense=5,
        tables=(
            EmbeddingTableSpec("t0", num_rows=300, dim=8, zipf_exponent=1.2),
            EmbeddingTableSpec("t1", num_rows=50, dim=8, zipf_exponent=1.0, multiplicity=3),
        ),
        num_samples=1000,
    )


@pytest.fixture(scope="module")
def log(schema):
    return SyntheticClickLog(schema, SyntheticConfig(num_samples=3000, seed=5))


class TestGeneration:
    def test_shapes(self, schema, log):
        assert log.dense.shape == (3000, 5)
        assert log.sparse["t0"].shape == (3000, 1)
        assert log.sparse["t1"].shape == (3000, 3)
        assert log.labels.shape == (3000,)
        assert len(log) == 3000

    def test_dtypes(self, log):
        assert log.dense.dtype == np.float32
        assert log.sparse["t0"].dtype == np.int64
        assert log.labels.dtype == np.float32

    def test_ids_in_range(self, schema, log):
        for spec in schema.tables:
            ids = log.sparse[spec.name]
            assert ids.min() >= 0
            assert ids.max() < spec.num_rows

    def test_labels_binary(self, log):
        assert set(np.unique(log.labels)) <= {0.0, 1.0}

    def test_deterministic_given_seed(self, schema):
        a = SyntheticClickLog(schema, SyntheticConfig(num_samples=200, seed=7))
        b = SyntheticClickLog(schema, SyntheticConfig(num_samples=200, seed=7))
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_array_equal(a.sparse["t0"], b.sparse["t0"])

    def test_seed_changes_data(self, schema):
        a = SyntheticClickLog(schema, SyntheticConfig(num_samples=200, seed=7))
        b = SyntheticClickLog(schema, SyntheticConfig(num_samples=200, seed=8))
        assert not np.array_equal(a.sparse["t0"], b.sparse["t0"])


class TestStatistics:
    def test_access_counts_total(self, log):
        counts = log.access_counts("t1")
        assert counts.sum() == 3000 * 3
        assert counts.shape == (50,)

    def test_access_counts_with_subset(self, log):
        subset = np.arange(100)
        counts = log.access_counts("t0", subset)
        assert counts.sum() == 100

    def test_accesses_are_skewed(self, log):
        counts = np.sort(log.access_counts("t0"))[::-1]
        top_decile = counts[:30].sum()
        assert top_decile / counts.sum() > 0.4

    def test_base_rate_reasonable(self, log):
        assert 0.2 < log.base_rate() < 0.8

    def test_bayes_beats_base_rate(self, log):
        majority = max(log.base_rate(), 1 - log.base_rate())
        assert log.bayes_accuracy() > majority

    def test_labels_correlate_with_planted_signal(self, schema):
        # With zero noise the planted logit should classify well.
        clean = SyntheticClickLog(
            schema, SyntheticConfig(num_samples=4000, seed=3, label_noise=0.0)
        )
        assert clean.bayes_accuracy() > 0.75


class TestTake:
    def test_take_subset(self, log):
        indices = np.array([5, 10, 20])
        sub = log.take(indices)
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.labels, log.labels[indices])
        np.testing.assert_array_equal(sub.sparse["t1"], log.sparse["t1"][indices])

    def test_take_preserves_schema(self, log, schema):
        sub = log.take(np.arange(10))
        assert sub.schema is schema

    def test_take_bayes_consistent(self, log):
        sub = log.take(np.arange(len(log)))
        assert sub.bayes_accuracy() == pytest.approx(log.bayes_accuracy())


class TestConfigValidation:
    def test_rejects_bad_sample_count(self):
        with pytest.raises(ValueError):
            SyntheticConfig(num_samples=0)

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            SyntheticConfig(num_samples=10, label_noise=-0.1)
