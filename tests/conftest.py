"""Shared fixtures: tiny schemas, logs, and FAE plans sized for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FAEConfig, fae_preprocess
from repro.data import SyntheticClickLog, SyntheticConfig
from repro.data.schema import DatasetSchema, EmbeddingTableSpec


@pytest.fixture(scope="session")
def tiny_schema() -> DatasetSchema:
    """Two large-ish tables and one small table, all dim 8."""
    return DatasetSchema(
        name="tiny",
        num_dense=4,
        tables=(
            EmbeddingTableSpec("table_00", num_rows=600, dim=8, zipf_exponent=1.2),
            EmbeddingTableSpec("table_01", num_rows=400, dim=8, zipf_exponent=1.1),
            EmbeddingTableSpec("table_02", num_rows=12, dim=8, zipf_exponent=0.5),
        ),
        num_samples=4000,
    )


@pytest.fixture(scope="session")
def tiny_log(tiny_schema: DatasetSchema) -> SyntheticClickLog:
    return SyntheticClickLog(tiny_schema, SyntheticConfig(num_samples=4000, seed=11))


@pytest.fixture(scope="session")
def tiny_fae_config() -> FAEConfig:
    """A config whose cutoffs are scaled to the tiny schema."""
    return FAEConfig(
        gpu_memory_budget=16 * 1024,
        sample_rate=0.2,
        large_table_min_bytes=1024,
        chunk_size=32,
        seed=3,
    )


@pytest.fixture(scope="session")
def tiny_plan(tiny_log, tiny_fae_config):
    return fae_preprocess(tiny_log, tiny_fae_config, batch_size=64)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
